//! Canned experiment definitions: one function per table/figure of the
//! paper. Each returns labelled series groups that the benchmark
//! harness prints; smoke tests run them at [`Scale::quick`].
//!
//! The figure numbering follows the paper:
//!
//! | fn | artifact | what it shows |
//! |---|---|---|
//! | [`table1`] | Table 1 | NIC buffer memory requirements |
//! | [`table2_overview`] | Table 2 | optimal ring topologies |
//! | [`fig06`] | Fig. 6 | single-ring latency vs size (cl × T) |
//! | [`fig07_08`] | Figs. 7–8 | 2-level ring latency and ring utilization |
//! | [`fig09_10`] | Figs. 9–10 | 3-level ring latency and global-ring utilization |
//! | [`fig11`] | Fig. 11 | benefit of hierarchy depth (R = 1.0 vs 0.2) |
//! | [`fig12_13`] | Figs. 12–13 | mesh latency per buffer regime + utilization |
//! | [`fig14`] | Fig. 14 | ring vs mesh, 4-flit buffers, per cl × T |
//! | [`fig15`] | Fig. 15 | ring vs mesh, cl-sized buffers, 128B |
//! | [`fig16`] | Fig. 16 | ring vs mesh, 1-flit buffers, 128B |
//! | [`fig17`] | Fig. 17 | ring vs mesh with locality (R ≤ 0.3) |
//! | [`fig18`] | Fig. 18 | locality with cl-sized mesh buffers, 128B |
//! | [`fig19_20`] | Figs. 19–20 | double-speed global ring latency + utilization |
//! | [`fig21`] | Fig. 21 | mesh vs double-speed-global rings |
//! | [`fig_crossover`] | extension | ring vs slotted vs mesh vs hybrid at matched PM counts |
//!
//! Every figure's sweep points run through [`run_series`]/[`run_points`]
//! and therefore fan out across the sweep worker pool (sized by
//! `RINGMESH_THREADS`, default: available parallelism). Each point owns
//! its seed and results are collected in input order, so figure output
//! is byte-identical at any thread count.

use ringmesh_net::{mesh_nic_buffer_bytes, ring_nic_buffer_bytes, BufferRegime, CacheLineSize};
use ringmesh_ring::RingSpec;
use ringmesh_stats::{Series, Table};
use ringmesh_workload::WorkloadParams;

use crate::sweep::{run_points, run_series, series_of, Scale};
use crate::system::RunResult;
use crate::topologies::{best_spec, mesh_size_ladder, ring_size_ladder, single_ring_max, table2};
use crate::{NetworkSpec, SystemConfig};

/// A titled group of series (one printed table/panel).
pub type Group = (String, Vec<Series>);
/// All panels of one figure.
pub type FigureData = Vec<Group>;

const SEED: u64 = 0x1997_0201; // HPCA, February 1997

fn wl(r: f64, t: u32) -> WorkloadParams {
    WorkloadParams::paper_baseline()
        .with_region(r)
        .with_outstanding(t)
}

fn ring_cfg(
    scale: Scale,
    spec: RingSpec,
    speedup: u32,
    cl: CacheLineSize,
    w: WorkloadParams,
) -> SystemConfig {
    SystemConfig::new(NetworkSpec::Ring { spec, speedup }, cl)
        .with_workload(w)
        .with_sim(scale.sim)
        .with_seed(SEED)
}

fn mesh_cfg(
    scale: Scale,
    side: u32,
    buffers: BufferRegime,
    cl: CacheLineSize,
    w: WorkloadParams,
) -> SystemConfig {
    SystemConfig::new(NetworkSpec::Mesh { side, buffers }, cl)
        .with_workload(w)
        .with_sim(scale.sim)
        .with_seed(SEED)
}

fn cls(scale: Scale) -> Vec<CacheLineSize> {
    if scale.quick {
        vec![CacheLineSize::B32, CacheLineSize::B128]
    } else {
        CacheLineSize::ALL.to_vec()
    }
}

fn ts(scale: Scale) -> Vec<u32> {
    if scale.quick {
        vec![1, 4]
    } else {
        vec![1, 2, 4]
    }
}

fn latency(r: &RunResult) -> f64 {
    r.mean_latency()
}

/// Ring latency series over the ring-natural size ladder.
fn ring_latency_series(
    scale: Scale,
    label: String,
    speedup: u32,
    cl: CacheLineSize,
    w: WorkloadParams,
) -> Series {
    let ladder = if speedup == 2 {
        double_speed_ladder(scale, cl)
    } else {
        ring_size_ladder(cl, scale.max_pms)
    };
    let points = ladder
        .into_iter()
        .map(|(p, spec)| (f64::from(p), ring_cfg(scale, spec, speedup, cl, w)))
        .collect();
    run_series(label, points, latency)
}

/// Mesh latency series over perfect-square sizes.
fn mesh_latency_series(
    scale: Scale,
    label: String,
    buffers: BufferRegime,
    cl: CacheLineSize,
    w: WorkloadParams,
) -> Series {
    let points = mesh_size_ladder(scale.max_pms)
        .into_iter()
        .map(|p| {
            let side = (p as f64).sqrt() as u32;
            (f64::from(p), mesh_cfg(scale, side, buffers, cl, w))
        })
        .collect();
    run_series(label, points, latency)
}

/// 3-level ladder with a double-speed global ring: up to 5 second-level
/// rings are sustainable (§6), so sweep j second-level rings, j = 2..=6.
fn double_speed_ladder(scale: Scale, cl: CacheLineSize) -> Vec<(u32, RingSpec)> {
    let m = single_ring_max(cl);
    let mut out = Vec::new();
    for j in 2..=6u32 {
        let p = j * 3 * m;
        if p <= scale.max_pms {
            out.push((p, RingSpec::new(vec![j, 3, m]).expect("valid spec")));
        }
    }
    if out.is_empty() {
        // Tiny quick scales: fall back to the largest 2-level point.
        out.push((2 * m, RingSpec::new(vec![2, m]).expect("valid spec")));
    }
    out
}

/// Table 1: memory requirements for ring and mesh NIC buffers.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: NIC buffer memory requirements (bytes)",
        &["network", "cache line", "cl-sized", "4-flit", "1-flit"],
    );
    for &cl in &CacheLineSize::ALL {
        t.push_row(vec![
            "ring".into(),
            cl.to_string(),
            ring_nic_buffer_bytes(cl).to_string(),
            "-".into(),
            "-".into(),
        ]);
    }
    for &cl in &CacheLineSize::ALL {
        t.push_row(vec![
            "mesh".into(),
            cl.to_string(),
            mesh_nic_buffer_bytes(cl, BufferRegime::CacheLine).to_string(),
            mesh_nic_buffer_bytes(cl, BufferRegime::FourFlit).to_string(),
            mesh_nic_buffer_bytes(cl, BufferRegime::OneFlit).to_string(),
        ]);
    }
    t
}

/// Table 2: the optimal hierarchical ring topology per (P, cache line).
pub fn table2_overview() -> Table {
    let mut t = Table::new(
        "Table 2: optimal hierarchical ring topology (R=1.0, C=0.04)",
        &["processors", "16B", "32B", "64B", "128B"],
    );
    for &p in &[4u32, 6, 8, 12, 18, 24, 36, 54, 72, 108] {
        let cell = |cl| table2(p, cl).map_or_else(|| "-".to_string(), |s| s.to_string());
        t.push_row(vec![
            p.to_string(),
            cell(CacheLineSize::B16),
            cell(CacheLineSize::B32),
            cell(CacheLineSize::B64),
            cell(CacheLineSize::B128),
        ]);
    }
    t
}

/// Figure 6: latency of single rings for each cache line size and
/// T ∈ {1, 2, 4}. Paper expectation: 16/32/64/128-byte systems sustain
/// ~12/8/6/4 nodes before latency climbs steeply.
pub fn fig06(scale: Scale) -> FigureData {
    let sizes: &[u32] = if scale.quick {
        &[2, 4, 8, 12, 16]
    } else {
        &[2, 4, 6, 8, 10, 12, 16, 20, 24, 32]
    };
    let mut out = FigureData::new();
    for cl in cls(scale) {
        let mut group = Vec::new();
        for t in ts(scale) {
            let points = sizes
                .iter()
                .filter(|&&n| n <= scale.max_pms)
                .map(|&n| {
                    (
                        f64::from(n),
                        ring_cfg(scale, RingSpec::single(n), 1, cl, wl(1.0, t)),
                    )
                })
                .collect();
            group.push(run_series(format!("T={t}"), points, latency));
        }
        out.push((format!("{cl} cache line (R=1.0, C=0.04)"), group));
    }
    out
}

/// Figures 7 and 8: 2-level hierarchies — latency (first group set) and
/// local/global ring utilization (second). Paper expectation: latency
/// knees when a second local ring is added and again past three local
/// rings, where the global ring saturates; this is independent of cl.
pub fn fig07_08(scale: Scale) -> (FigureData, FigureData) {
    let mut latency_groups = Vec::new();
    let mut local_util = Vec::new();
    let mut global_util = Vec::new();
    for cl in cls(scale) {
        let m = single_ring_max(cl);
        let mut points = vec![(
            f64::from(m),
            ring_cfg(scale, RingSpec::single(m), 1, cl, wl(1.0, 4)),
        )];
        for k in 2..=5u32 {
            let p = k * m;
            if p <= scale.max_pms.max(60) {
                let spec = RingSpec::new(vec![k, m]).expect("valid spec");
                points.push((f64::from(p), ring_cfg(scale, spec, 1, cl, wl(1.0, 4))));
            }
        }
        let results = run_points(points);
        latency_groups.push(series_of(format!("{cl} cache line"), &results, latency));
        local_util.push(series_of(format!("{cl} cache line"), &results, |r| {
            100.0
                * r.utilization
                    .level("local rings")
                    .or(r.utilization.level("ring"))
                    .unwrap_or(0.0)
        }));
        global_util.push(series_of(format!("{cl} cache line"), &results, |r| {
            100.0 * r.utilization.level("global ring").unwrap_or(0.0)
        }));
    }
    (
        vec![(
            "2-level ring latency (R=1.0, C=0.04, T=4)".into(),
            latency_groups,
        )],
        vec![
            (
                "local ring utilization % (R=1.0, C=0.04, T=4)".into(),
                local_util,
            ),
            (
                "global ring utilization % (R=1.0, C=0.04, T=4)".into(),
                global_util,
            ),
        ],
    )
}

/// Figures 9 and 10: 3-level hierarchies — latency and global-ring
/// utilization. Paper expectation: ~108/72/54/36 nodes supported for
/// 16/32/64/128-byte lines; the global ring saturates past 3
/// second-level rings.
pub fn fig09_10(scale: Scale) -> (FigureData, FigureData) {
    let mut latency_groups = Vec::new();
    let mut global_util = Vec::new();
    let cap = if scale.quick { scale.max_pms } else { 150 };
    for cl in cls(scale) {
        let m = single_ring_max(cl);
        let mut points = vec![(
            f64::from(3 * m),
            ring_cfg(
                scale,
                RingSpec::new(vec![3, m]).expect("valid"),
                1,
                cl,
                wl(1.0, 4),
            ),
        )];
        for j in 2..=4u32 {
            let p = j * 3 * m;
            if p <= cap {
                let spec = RingSpec::new(vec![j, 3, m]).expect("valid spec");
                points.push((f64::from(p), ring_cfg(scale, spec, 1, cl, wl(1.0, 4))));
            }
        }
        let results = run_points(points);
        latency_groups.push(series_of(format!("{cl} cache line"), &results, latency));
        global_util.push(series_of(format!("{cl} cache line"), &results, |r| {
            100.0 * r.utilization.level("global ring").unwrap_or(0.0)
        }));
    }
    (
        vec![(
            "3-level ring latency (R=1.0, C=0.04, T=4)".into(),
            latency_groups,
        )],
        vec![(
            "global ring utilization % (R=1.0, C=0.04, T=4)".into(),
            global_util,
        )],
    )
}

/// Figure 11: the benefit of hierarchy depth for 32-byte lines, T = 2,
/// without (R = 1.0) and with (R = 0.2) locality. Paper expectation:
/// each added level shifts the latency curve right; the benefit is
/// larger with locality.
pub fn fig11(scale: Scale) -> FigureData {
    let cl = CacheLineSize::B32;
    let mut out = FigureData::new();
    for r in [1.0, 0.2] {
        let mut group = Vec::new();
        for levels in 1..=4usize {
            let sizes: Vec<u32> = match levels {
                1 => vec![2, 4, 6, 8, 12, 16],
                2 => vec![16, 24, 32, 40, 48],
                3 => vec![48, 72, 96, 120],
                _ => vec![64, 96, 108, 120, 144],
            };
            let mut points = Vec::new();
            for p in sizes {
                if p > scale.max_pms.max(48) {
                    continue;
                }
                if let Some(spec) = best_spec(p, cl, Some(levels)) {
                    points.push((f64::from(p), ring_cfg(scale, spec, 1, cl, wl(r, 2))));
                }
            }
            if points.is_empty() {
                continue;
            }
            group.push(run_series(format!("{levels}-level rings"), points, latency));
        }
        out.push((format!("32B cache line, R={r}, C=0.04, T=2"), group));
    }
    out
}

/// Figures 12 and 13: mesh latency per buffer regime and network
/// utilization with 4-flit buffers. Paper expectation: latency grows
/// far more slowly with size than rings; 1-flit ≫ 4-flit ≫ cl-sized
/// buffer latency; utilization peaks early then decays.
pub fn fig12_13(scale: Scale) -> (FigureData, FigureData) {
    let mut latency_groups = FigureData::new();
    let mut util_series = Vec::new();
    for regime in [
        BufferRegime::CacheLine,
        BufferRegime::FourFlit,
        BufferRegime::OneFlit,
    ] {
        let mut group = Vec::new();
        for cl in cls(scale) {
            let points: Vec<(f64, SystemConfig)> = mesh_size_ladder(scale.max_pms.max(36))
                .into_iter()
                .map(|p| {
                    let side = (p as f64).sqrt() as u32;
                    (f64::from(p), mesh_cfg(scale, side, regime, cl, wl(1.0, 4)))
                })
                .collect();
            if regime == BufferRegime::FourFlit {
                let results = run_points(points.clone());
                group.push(series_of(format!("{cl} cache line"), &results, latency));
                util_series.push(series_of(format!("{cl} cache line"), &results, |r| {
                    100.0 * r.utilization.overall
                }));
            } else {
                group.push(run_series(format!("{cl} cache line"), points, latency));
            }
        }
        latency_groups.push((
            format!("mesh latency, {regime} buffers (R=1.0, C=0.04, T=4)"),
            group,
        ));
    }
    (
        latency_groups,
        vec![(
            "mesh network utilization %, 4-flit buffers (R=1.0, C=0.04, T=4)".into(),
            util_series,
        )],
    )
}

/// Figure 14: ring vs mesh with 4-flit mesh buffers, per cache line and
/// T. Paper expectation: cross-over points at ~16/25/27/36 nodes for
/// 16/32/64/128-byte lines, nearly independent of T (except T = 1).
pub fn fig14(scale: Scale) -> FigureData {
    let mut out = FigureData::new();
    for cl in cls(scale) {
        let mut group = Vec::new();
        for t in ts(scale) {
            group.push(mesh_latency_series(
                scale,
                format!("Mesh, T={t}"),
                BufferRegime::FourFlit,
                cl,
                wl(1.0, t),
            ));
            group.push(ring_latency_series(
                scale,
                format!("Ring, T={t}"),
                1,
                cl,
                wl(1.0, t),
            ));
        }
        out.push((
            format!("{cl} cache line (R=1.0, C=0.04), mesh 4-flit buffers"),
            group,
        ));
    }
    out
}

/// Figure 15: ring vs mesh with cl-sized mesh buffers, 128-byte lines.
/// Paper expectation: cross-overs drop to 16–30 nodes depending on T.
pub fn fig15(scale: Scale) -> FigureData {
    compare_at_regime(scale, BufferRegime::CacheLine, "cl-sized")
}

/// Figure 16: ring vs mesh with 1-flit mesh buffers, 128-byte lines.
/// Paper expectation: rings win across the whole studied range (the
/// cross-over lies beyond 121 nodes).
pub fn fig16(scale: Scale) -> FigureData {
    compare_at_regime(scale, BufferRegime::OneFlit, "1-flit")
}

fn compare_at_regime(scale: Scale, regime: BufferRegime, name: &str) -> FigureData {
    let cl = CacheLineSize::B128;
    let mut group = Vec::new();
    for t in ts(scale) {
        group.push(mesh_latency_series(
            scale,
            format!("Mesh, T={t}"),
            regime,
            cl,
            wl(1.0, t),
        ));
        group.push(ring_latency_series(
            scale,
            format!("Ring, T={t}"),
            1,
            cl,
            wl(1.0, t),
        ));
    }
    vec![(
        format!("128B cache line (R=1.0, C=0.04), mesh {name} buffers"),
        group,
    )]
}

/// Figure 17: ring vs mesh under locality R ∈ {0.1, 0.2, 0.3}, 4-flit
/// mesh buffers, T = 4. Paper expectation: rings win by ~20–40% up to
/// 121 processors (except 16-byte lines, where they tie), and the gap
/// is wider at R = 0.2 than at R = 0.1.
pub fn fig17(scale: Scale) -> FigureData {
    let rs: &[f64] = if scale.quick {
        &[0.1, 0.3]
    } else {
        &[0.1, 0.2, 0.3]
    };
    let mut out = FigureData::new();
    for cl in cls(scale) {
        let mut group = Vec::new();
        for &r in rs {
            group.push(mesh_latency_series(
                scale,
                format!("Mesh, R={r}"),
                BufferRegime::FourFlit,
                cl,
                wl(r, 4),
            ));
            group.push(ring_latency_series(
                scale,
                format!("Ring, R={r}"),
                1,
                cl,
                wl(r, 4),
            ));
        }
        out.push((
            format!("{cl} cache line (C=0.04, T=4), mesh 4-flit buffers"),
            group,
        ));
    }
    out
}

/// Figure 18: locality with cl-sized mesh buffers, 128-byte lines.
/// Paper expectation: cross-overs move out to 45+ processors for
/// R ≤ 0.3.
pub fn fig18(scale: Scale) -> FigureData {
    let rs: &[f64] = if scale.quick {
        &[0.1, 0.3]
    } else {
        &[0.1, 0.2, 0.3]
    };
    let cl = CacheLineSize::B128;
    let mut group = Vec::new();
    for &r in rs {
        group.push(mesh_latency_series(
            scale,
            format!("Mesh, R={r}"),
            BufferRegime::CacheLine,
            cl,
            wl(r, 4),
        ));
        group.push(ring_latency_series(
            scale,
            format!("Ring, R={r}"),
            1,
            cl,
            wl(r, 4),
        ));
    }
    vec![(
        "128B cache line (C=0.04, T=4), mesh cl-sized buffers".into(),
        group,
    )]
}

/// Figures 19 and 20: 3-level hierarchies with normal vs double-speed
/// global rings — latency and global-ring utilization. Paper
/// expectation: a 2× global ring sustains 5 second-level rings instead
/// of 3 (180/120/90/60 PMs) and its utilization grows more linearly.
pub fn fig19_20(scale: Scale) -> (FigureData, FigureData) {
    let line_sizes = if scale.quick {
        vec![CacheLineSize::B32, CacheLineSize::B128]
    } else {
        vec![CacheLineSize::B32, CacheLineSize::B64, CacheLineSize::B128]
    };
    let mut latency_group = Vec::new();
    let mut util_group = Vec::new();
    for cl in line_sizes {
        for (speedup, name) in [(2u32, "double speed"), (1, "normal speed")] {
            let m = single_ring_max(cl);
            let top = if speedup == 2 { 6 } else { 4 };
            let mut points = Vec::new();
            for j in 2..=top {
                let p = j * 3 * m;
                if p <= scale.max_pms.max(60) {
                    let spec = RingSpec::new(vec![j, 3, m]).expect("valid spec");
                    points.push((f64::from(p), ring_cfg(scale, spec, speedup, cl, wl(1.0, 4))));
                }
            }
            if points.is_empty() {
                continue;
            }
            let results = run_points(points);
            latency_group.push(series_of(
                format!("{cl} cache line, {name}"),
                &results,
                latency,
            ));
            util_group.push(series_of(
                format!("{cl} cache line, {name}"),
                &results,
                |r| 100.0 * r.utilization.level("global ring").unwrap_or(0.0),
            ));
        }
    }
    (
        vec![(
            "3-level rings, normal vs double-speed global ring (R=1.0, C=0.04, T=4)".into(),
            latency_group,
        )],
        vec![(
            "global ring utilization %, normal vs double speed (R=1.0, C=0.04, T=4)".into(),
            util_group,
        )],
    )
}

/// Figure 21: mesh (4-flit buffers) vs 3-level rings with double-speed
/// global rings, no locality. Paper expectation: 128-byte-line rings
/// win by 10–20%; for 32/64-byte lines cross-overs are unchanged since
/// they occur before a third level is needed.
pub fn fig21(scale: Scale) -> FigureData {
    let line_sizes = if scale.quick {
        vec![CacheLineSize::B32, CacheLineSize::B128]
    } else {
        vec![CacheLineSize::B32, CacheLineSize::B64, CacheLineSize::B128]
    };
    let mut group = Vec::new();
    for cl in line_sizes {
        group.push(mesh_latency_series(
            scale,
            format!("Mesh, cl={cl}"),
            BufferRegime::FourFlit,
            cl,
            wl(1.0, 4),
        ));
        group.push(ring_latency_series(
            scale,
            format!("Ring, cl={cl}"),
            2,
            cl,
            wl(1.0, 4),
        ));
    }
    vec![(
        "mesh vs double-speed-global rings (R=1.0, C=0.04, T=4)".into(),
        group,
    )]
}

/// The spec strings of the crossover study, one curve per registered
/// topology at matched PM counts: `p = (2g)²` gives a `2g × 2g` mesh
/// and a `g × g` hybrid of 4-PM rings; the rings take their Table-2
/// optimal hierarchy at the same `p`. Split out from [`fig_crossover`]
/// so tests can pin the registry round-trip without running sweeps.
pub fn crossover_specs(scale: Scale) -> Vec<(&'static str, Vec<(u32, String)>)> {
    let cl = CacheLineSize::B64;
    let pms: Vec<u32> = [16u32, 36, 64, 100, 144]
        .into_iter()
        .filter(|&p| p <= scale.max_pms.max(36))
        .collect();
    let rings = |prefix: &str| -> Vec<(u32, String)> {
        pms.iter()
            .filter_map(|&p| best_spec(p, cl, None).map(|s| (p, format!("{prefix}:{s}"))))
            .collect()
    };
    vec![
        ("Ring", rings("ring")),
        ("Slotted", rings("slotted")),
        (
            "Mesh",
            pms.iter()
                .map(|&p| (p, format!("mesh:{}", (f64::from(p)).sqrt() as u32)))
                .collect(),
        ),
        (
            "Hybrid",
            pms.iter()
                .map(|&p| {
                    let g = (f64::from(p / 4)).sqrt() as u32;
                    (p, format!("hybrid:{g}x{g}:4"))
                })
                .collect(),
        ),
    ]
}

/// The Ring-Mesh crossover study (beyond the paper; the design studied
/// by the arXiv:1904.03428 line of work): uniform M-MRP latency and
/// throughput for all four registered topologies — wormhole ring,
/// slotted ring, mesh and the hybrid mesh-of-rings — at matched PM
/// counts, 64-byte lines, R=1.0, C=0.04, T=4. Every configuration is
/// built by parsing a registry spec string, so this sweep exercises
/// exactly the `--topology` path end to end.
pub fn fig_crossover(scale: Scale) -> FigureData {
    let cl = CacheLineSize::B64;
    let mut latency_group = Vec::new();
    let mut thru_group = Vec::new();
    for (label, specs) in crossover_specs(scale) {
        let points: Vec<(f64, SystemConfig)> = specs
            .into_iter()
            .map(|(p, s)| {
                let network: NetworkSpec = s.parse().expect("registry spec");
                (
                    f64::from(p),
                    SystemConfig::new(network, cl)
                        .with_workload(wl(1.0, 4))
                        .with_sim(scale.sim)
                        .with_seed(SEED),
                )
            })
            .collect();
        let results = run_points(points);
        latency_group.push(series_of(label.to_string(), &results, latency));
        thru_group.push(series_of(label.to_string(), &results, |r| r.throughput));
    }
    vec![
        (
            "ring vs slotted vs mesh vs hybrid latency (64B, R=1.0, C=0.04, T=4)".into(),
            latency_group,
        ),
        (
            "ring vs slotted vs mesh vs hybrid throughput, txns/cycle (64B, R=1.0, C=0.04, T=4)"
                .into(),
            thru_group,
        ),
    ]
}

/// Prints a figure's groups as aligned tables, with cross-over points
/// for Ring/Mesh comparison groups. If the `RINGMESH_CSV_DIR`
/// environment variable names a directory, each group is also written
/// there as a CSV file (for plotting).
pub fn print_figure(name: &str, data: &FigureData) {
    println!("==== {name} ====");
    for (i, (title, series)) in data.iter().enumerate() {
        let table = Table::from_series(title.clone(), "nodes", series);
        if let Ok(dir) = std::env::var("RINGMESH_CSV_DIR") {
            let slug: String = name
                .split(':')
                .next()
                .unwrap_or(name)
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            let path = std::path::Path::new(&dir).join(format!("{slug}_{i}.csv"));
            if let Err(e) =
                std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, table.to_csv()))
            {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        println!("{table}");
        // Report ring-vs-mesh cross-overs when both curves exist.
        for s in series.iter() {
            if let Some(rest) = s.label.strip_prefix("Mesh") {
                let ring_label = format!("Ring{rest}");
                if let Some(ring) = series.iter().find(|r| r.label == ring_label) {
                    match ring.crossover_with(s) {
                        Some(x) => println!(
                            "  cross-over ({}): {:.0} nodes",
                            rest.trim_start_matches(", "),
                            x
                        ),
                        None => println!(
                            "  cross-over ({}): none in range",
                            rest.trim_start_matches(", ")
                        ),
                    }
                }
            }
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let t = table1();
        // Ring 128B row ends with 144 bytes; mesh 128B row: 576/64/16.
        let ring128 = &t.rows[3];
        assert_eq!(ring128[2], "144");
        let mesh128 = &t.rows[7];
        assert_eq!(
            &mesh128[2..],
            &["576".to_string(), "64".into(), "16".into()]
        );
    }

    #[test]
    fn table2_overview_has_all_rows() {
        let t = table2_overview();
        assert_eq!(t.rows.len(), 10);
        assert_eq!(t.rows[9][0], "108");
        assert_eq!(t.rows[9][1], "3:3:12");
    }

    #[test]
    fn crossover_specs_are_matched_and_round_trip() {
        for (label, specs) in crossover_specs(Scale::full()) {
            assert!(!specs.is_empty(), "{label} curve has points");
            for (p, s) in specs {
                let net: NetworkSpec = s.parse().unwrap_or_else(|e| panic!("{label} {s}: {e}"));
                assert_eq!(net.num_pms(), p, "{label} {s}");
                assert_eq!(net.to_string(), s, "{label} spec must be canonical");
            }
        }
        // Every curve covers the same matched sizes (the rings can
        // only drop a point if no hierarchy exists, which would skew
        // the comparison silently — refuse that here).
        let sizes: Vec<Vec<u32>> = crossover_specs(Scale::full())
            .into_iter()
            .map(|(_, v)| v.into_iter().map(|(p, _)| p).collect())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");
    }

    #[test]
    fn double_speed_ladder_sizes() {
        let l = double_speed_ladder(Scale::full(), CacheLineSize::B128);
        let sizes: Vec<u32> = l.iter().map(|&(p, _)| p).collect();
        // 128B: m=4 → 24, 36, 48, 60, 72 capped at 128.
        assert_eq!(sizes, vec![24, 36, 48, 60, 72]);
    }
}
