//! Ablation studies on the design decisions DESIGN.md calls out:
//! the deadlock-avoidance flow control, the memory-latency substitution
//! and the deterministic miss process. Each shows the headline results
//! are insensitive to (or explains the need for) the choice.
//!
//! Every ablation's runs are independent simulations, so they fan out
//! across the same worker pool as the figure sweeps (honouring
//! `RINGMESH_THREADS` and [`crate::set_sweep_threads`]), with results
//! collected in input order — output is identical at any thread count.

use ringmesh_net::CacheLineSize;
use ringmesh_ring::RingConfig;
use ringmesh_stats::{Series, Table};
use ringmesh_workload::{MemoryParams, MissProcess, WorkloadParams};

use crate::sweep::{default_pool, Scale};
use crate::system::System;
use crate::{NetworkSpec, SystemConfig};

/// Ablation 1 — IRI queue capacity (DESIGN.md: "elastic" inter-ring
/// queues). Reruns a bisection-saturated 3-level ring with finite
/// up/down queues of 1, 2 and 4 packets per class: the paper's literal
/// 1-packet queues deadlock (reported as `stall`), motivating the
/// elastic default.
pub fn ablation_iri_queue(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation: IRI up/down queue capacity on a saturated 3-level ring (3:3:6, 64B, R=1.0, T=4)",
        &[
            "queue capacity (packets/class)",
            "mean latency (cycles)",
            "throughput (txn/cycle)",
        ],
    );
    let spec: ringmesh_ring::RingSpec = "3:3:6".parse().expect("valid spec");
    let caps = vec![Some(1), Some(2), Some(4), None];
    let runs = default_pool().map(caps, |_, cap| {
        let mut rc = RingConfig::new(CacheLineSize::B64);
        rc.iri_queue_packets = cap;
        // Trip the watchdog quickly so deadlocked configurations report
        // as stalls instead of silently measuring nothing.
        rc.watchdog_horizon = 2_000;
        let cfg = SystemConfig::new(NetworkSpec::ring(spec.clone()), CacheLineSize::B64)
            .with_sim(scale.sim);
        (cap, System::with_ring_config(cfg, rc).and_then(System::run))
    });
    for (cap, run) in runs {
        let label = cap.map_or("elastic".to_string(), |c| c.to_string());
        match run {
            Ok(r) => t.push_row(vec![
                label,
                format!("{:.1}", r.mean_latency()),
                format!("{:.3}", r.throughput),
            ]),
            Err(e) => t.push_row(vec![label, format!("stall: {e}"), "-".into()]),
        }
    }
    t
}

/// Ablation 2 — memory access latency (DESIGN.md: fixed 10-cycle
/// pipelined memory). The ring/mesh latency *difference* at the
/// cross-over size barely moves as memory latency varies, confirming
/// the substitution shifts both curves by a constant.
pub fn ablation_memory_latency(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation: memory latency at the 36-processor, 64B cross-over point (R=1.0, T=4)",
        &["memory latency", "ring 2:3:6", "mesh 6x6", "difference"],
    );
    let rows = default_pool().map(vec![5u32, 10, 20, 40], |_, lat| {
        let mem = MemoryParams {
            latency: lat,
            occupancy: 1,
        };
        let run = |network: NetworkSpec| {
            let mut cfg = SystemConfig::new(network, CacheLineSize::B64).with_sim(scale.sim);
            cfg.memory = mem;
            System::new(cfg)
                .and_then(System::run)
                .map(|r| r.mean_latency())
                .unwrap_or(f64::NAN)
        };
        let ring = run(NetworkSpec::ring("2:3:6".parse().expect("valid")));
        let mesh = run(NetworkSpec::mesh(6));
        (lat, ring, mesh)
    });
    for (lat, ring, mesh) in rows {
        t.push_row(vec![
            format!("{lat}"),
            format!("{ring:.1}"),
            format!("{mesh:.1}"),
            format!("{:+.1}", ring - mesh),
        ]);
    }
    t
}

/// Ablation 3 — miss-interval process (DESIGN.md: deterministic
/// 25-cycle intervals per the paper). Geometric (memoryless) intervals
/// of the same mean add burstiness; latencies rise slightly but the
/// ring/mesh ordering is unchanged.
pub fn ablation_miss_process(scale: Scale) -> Vec<Series> {
    let mut items = Vec::new();
    for (name, process) in [
        ("deterministic", MissProcess::Deterministic),
        ("geometric", MissProcess::Geometric),
    ] {
        for (label, network) in [
            (
                "ring 2:3:6",
                NetworkSpec::ring("2:3:6".parse().expect("valid")),
            ),
            ("mesh 6x6", NetworkSpec::mesh(6)),
        ] {
            for t_limit in [1u32, 2, 4] {
                items.push((
                    format!("{label}, {name}"),
                    process,
                    network.clone(),
                    t_limit,
                ));
            }
        }
    }
    let results = default_pool().map(items, |_, (series_label, process, network, t_limit)| {
        let cfg = SystemConfig::new(network, CacheLineSize::B64)
            .with_workload(
                WorkloadParams::paper_baseline()
                    .with_outstanding(t_limit)
                    .with_miss_process(process),
            )
            .with_sim(scale.sim);
        let latency = System::new(cfg)
            .and_then(System::run)
            .ok()
            .map(|r| r.mean_latency());
        (series_label, t_limit, latency)
    });
    // Order-preserving collection keeps each series' points contiguous.
    let mut out: Vec<Series> = Vec::new();
    for (series_label, t_limit, latency) in results {
        if out.last().is_none_or(|s| s.label != series_label) {
            out.push(Series::new(series_label));
        }
        if let Some(y) = latency {
            out.last_mut()
                .expect("just pushed")
                .push(f64::from(t_limit), y);
        }
    }
    out
}

/// Ablation 4 — mesh PM injection-queue depth (the paper assumes one
/// packet per class, as we default): deeper queues decouple the PM but
/// must not change steady-state closed-loop latency materially.
pub fn ablation_mesh_out_queue(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation: mesh PM injection queue depth (6x6, 64B, R=1.0, T=4)",
        &["queue depth (packets/class)", "mean latency", "throughput"],
    );
    let runs = default_pool().map(vec![1usize, 2, 4], |_, depth| {
        let cfg = SystemConfig::new(NetworkSpec::mesh(6), CacheLineSize::B64).with_sim(scale.sim);
        // Route through the public mesh config by rebuilding manually.
        let mut mc = ringmesh_mesh::MeshConfig::new(CacheLineSize::B64);
        mc.out_queue_packets = depth;
        let net = ringmesh_mesh::MeshNetwork::new(ringmesh_mesh::MeshTopology::new(6), mc);
        (depth, crate::system::run_prebuilt(Box::new(net), cfg))
    });
    for (depth, r) in runs {
        match r {
            Ok(r) => t.push_row(vec![
                depth.to_string(),
                format!("{:.1}", r.mean_latency()),
                format!("{:.3}", r.throughput),
            ]),
            Err(e) => t.push_row(vec![depth.to_string(), format!("stall: {e}"), "-".into()]),
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_process_ablation_produces_all_series() {
        let series = ablation_miss_process(Scale::quick());
        assert_eq!(series.len(), 4);
        assert!(series.iter().all(|s| !s.points.is_empty()));
    }

    #[test]
    fn memory_ablation_difference_is_stable() {
        let t = ablation_memory_latency(Scale::quick());
        assert_eq!(t.rows.len(), 4);
    }
}
