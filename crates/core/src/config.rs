//! Top-level system configuration.

use std::fmt;
use std::fmt::Write as _;
use std::str::FromStr;

use ringmesh_hybrid::HybridBuilder;
use ringmesh_mesh::MeshBuilder;
use ringmesh_net::{BufferRegime, CacheLineSize, ConfigError, TopologyBuilder};
use ringmesh_ring::{RingBuilder, RingSpec, SlottedBuilder};
use ringmesh_snap::Fingerprint;
use ringmesh_workload::{MemoryParams, MissProcess, WorkloadParams};

/// Which interconnect to simulate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkSpec {
    /// A hierarchical ring with the given topology; `speedup` = 2 gives
    /// the §6 double-speed global ring.
    Ring {
        /// Hierarchy spec (e.g. `"2:3:4".parse()`).
        spec: RingSpec,
        /// Global-ring clock multiplier (1 or 2).
        speedup: u32,
    },
    /// A square `side × side` bi-directional mesh.
    Mesh {
        /// Mesh side length.
        side: u32,
        /// Router input buffer regime.
        buffers: BufferRegime,
    },
    /// A hierarchical ring with slotted (non-blocking) switching — the
    /// Hector/NUMAchine discipline the paper's footnote 3 mentions;
    /// provided as an extension for switching-technique comparisons.
    SlottedRing {
        /// Hierarchy spec.
        spec: RingSpec,
    },
    /// A hybrid Ring-Mesh: a `side × side` global wormhole mesh whose
    /// routers each carry one `local`-PM ring, bridged per router
    /// (the arXiv:1904.03428 crossover design).
    Hybrid {
        /// Global mesh side length.
        side: u32,
        /// PMs per local ring.
        local: u32,
    },
}

impl NetworkSpec {
    /// A normal-speed ring network.
    pub fn ring(spec: RingSpec) -> Self {
        NetworkSpec::Ring { spec, speedup: 1 }
    }

    /// A mesh with the paper's default 4-flit buffers.
    pub fn mesh(side: u32) -> Self {
        NetworkSpec::Mesh {
            side,
            buffers: BufferRegime::FourFlit,
        }
    }

    /// The [`TopologyBuilder`] for this spec — the single point where
    /// a network description becomes a concrete topology. Everything
    /// identity- or construction-shaped (PM count, labels, spec
    /// strings, workload placement, packet format, kernel-parallelism
    /// support, and the network itself) comes off this builder; no
    /// other code matches on the variants to construct a network.
    pub fn builder(&self) -> Box<dyn TopologyBuilder> {
        match self.clone() {
            NetworkSpec::Ring { spec, speedup } => Box::new(RingBuilder { spec, speedup }),
            NetworkSpec::Mesh { side, buffers } => Box::new(MeshBuilder { side, buffers }),
            NetworkSpec::SlottedRing { spec } => Box::new(SlottedBuilder { spec }),
            NetworkSpec::Hybrid { side, local } => Box::new(HybridBuilder { side, local }),
        }
    }

    /// Number of processing modules.
    pub fn num_pms(&self) -> u32 {
        self.builder().num_pms()
    }

    /// Short human-readable description ("ring 2:3:4", "mesh 6x6
    /// (4-flit buffers)").
    pub fn label(&self) -> String {
        self.builder().label()
    }
}

/// Prints the canonical spec string (`ring:2:3:4`, `mesh:12`,
/// `hybrid:4x4:4`, …) — the exact inverse of [`FromStr`], used by the
/// CLI `--topology` flag, serve job keys and the config canonical
/// form.
impl fmt::Display for NetworkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.builder().spec())
    }
}

impl FromStr for NetworkSpec {
    type Err = ConfigError;

    /// Parses a topology spec string:
    ///
    /// * `ring:2:3:4` — hierarchical ring (normal-speed global ring)
    /// * `ring2x:2:3:4` — §6 double-speed global ring
    /// * `slotted:2:3:4` — slotted-ring switching
    /// * `mesh:12`, `mesh:12:1flit`, `mesh:12:cl` — square mesh with
    ///   4-flit (default), 1-flit or cache-line buffers
    /// * `hybrid:4x4:4` — 4×4 global mesh of 4-PM local rings
    fn from_str(s: &str) -> Result<Self, ConfigError> {
        let (head, rest) = s.split_once(':').ok_or_else(|| {
            ConfigError::Invalid(format!(
                "topology '{s}' must be '<kind>:<shape>' \
                 (e.g. ring:2:3:4, mesh:12, hybrid:4x4:4)"
            ))
        })?;
        match head {
            "ring" => Ok(NetworkSpec::Ring {
                spec: rest.parse()?,
                speedup: 1,
            }),
            "slotted" => Ok(NetworkSpec::SlottedRing {
                spec: rest.parse()?,
            }),
            "mesh" => {
                let (side_s, regime) = match rest.split_once(':') {
                    Some((a, b)) => (a, Some(b)),
                    None => (rest, None),
                };
                let side: u32 = side_s.parse().map_err(|_| {
                    ConfigError::Invalid(format!("mesh side '{side_s}' is not a number"))
                })?;
                let buffers = match regime {
                    None | Some("4flit") => BufferRegime::FourFlit,
                    Some("1flit") => BufferRegime::OneFlit,
                    Some("cl") => BufferRegime::CacheLine,
                    Some(other) => {
                        return Err(ConfigError::Invalid(format!(
                            "unknown mesh buffer regime '{other}' \
                             (expected 1flit, 4flit or cl)"
                        )))
                    }
                };
                if side == 0 {
                    return Err(ConfigError::ZeroMeshSide);
                }
                Ok(NetworkSpec::Mesh { side, buffers })
            }
            "hybrid" => {
                let bad_shape = || {
                    ConfigError::Invalid(format!(
                        "hybrid topology '{s}' must be 'hybrid:<G>x<G>:<L>' \
                         (e.g. hybrid:4x4:4)"
                    ))
                };
                let (grid, local_s) = rest.split_once(':').ok_or_else(bad_shape)?;
                let (a, b) = grid.split_once('x').ok_or_else(bad_shape)?;
                let side: u32 = a.parse().map_err(|_| bad_shape())?;
                let side_b: u32 = b.parse().map_err(|_| bad_shape())?;
                if side != side_b {
                    return Err(ConfigError::Invalid(format!(
                        "hybrid global mesh must be square, got {a}x{b}"
                    )));
                }
                let local: u32 = local_s.parse().map_err(|_| bad_shape())?;
                if side == 0 {
                    return Err(ConfigError::ZeroMeshSide);
                }
                if local == 0 {
                    return Err(ConfigError::Invalid(
                        "hybrid local ring size must be positive".into(),
                    ));
                }
                Ok(NetworkSpec::Hybrid { side, local })
            }
            _ => {
                // ringNx:SPEC — global-ring clock multiplier.
                if let Some(n_s) = head.strip_prefix("ring").and_then(|t| t.strip_suffix('x')) {
                    let speedup: u32 = n_s.parse().map_err(|_| {
                        ConfigError::Invalid(format!(
                            "ring speedup '{n_s}' in '{head}' is not a number"
                        ))
                    })?;
                    if !(1..=2).contains(&speedup) {
                        return Err(ConfigError::Invalid(format!(
                            "global ring speedup {speedup} unsupported (must be 1 or 2)"
                        )));
                    }
                    return Ok(NetworkSpec::Ring {
                        spec: rest.parse()?,
                        speedup,
                    });
                }
                Err(ConfigError::Invalid(format!(
                    "unknown topology kind '{head}' \
                     (expected ring, ring2x, slotted, mesh or hybrid)"
                )))
            }
        }
    }
}

/// Simulation run lengths for the batch-means method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimParams {
    /// Warm-up cycles discarded (the paper's discarded first batch).
    pub warmup: u64,
    /// Cycles per measured batch.
    pub batch_cycles: u64,
    /// Number of measured batches.
    pub batches: usize,
}

impl SimParams {
    /// Full measurement quality: 4k warm-up + 8 × 4k batches.
    pub fn full() -> Self {
        SimParams {
            warmup: 4_000,
            batch_cycles: 4_000,
            batches: 8,
        }
    }

    /// Reduced lengths for smoke tests and quick sweeps.
    pub fn quick() -> Self {
        SimParams {
            warmup: 1_500,
            batch_cycles: 1_500,
            batches: 5,
        }
    }

    /// Total simulated cycles.
    pub fn horizon(&self) -> u64 {
        self.warmup + self.batch_cycles * self.batches as u64
    }
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams::full()
    }
}

/// Everything needed to run one simulation point.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// The interconnect under test.
    pub network: NetworkSpec,
    /// Cache line size (16/32/64/128 bytes).
    pub cache_line: CacheLineSize,
    /// M-MRP workload attributes (R, C, T, read fraction).
    pub workload: WorkloadParams,
    /// Memory-system timing.
    pub memory: MemoryParams,
    /// Batch-means run lengths.
    pub sim: SimParams,
    /// Root RNG seed; equal seeds replay bit-for-bit.
    pub seed: u64,
}

impl SystemConfig {
    /// A configuration with paper-default workload, memory and
    /// measurement parameters.
    pub fn new(network: NetworkSpec, cache_line: CacheLineSize) -> Self {
        SystemConfig {
            network,
            cache_line,
            workload: WorkloadParams::paper_baseline(),
            memory: MemoryParams::default(),
            sim: SimParams::default(),
            seed: 0x52_49_4e_47, // "RING"
        }
    }

    /// Returns the config with different workload parameters.
    pub fn with_workload(mut self, workload: WorkloadParams) -> Self {
        self.workload = workload;
        self
    }

    /// Returns the config with different measurement lengths.
    pub fn with_sim(mut self, sim: SimParams) -> Self {
        self.sim = sim;
        self
    }

    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A canonical, versioned textual form covering *every* field that
    /// influences simulation output. Two configs with equal canonical
    /// strings produce bit-identical runs; floats are rendered as their
    /// raw IEEE-754 bits so "equal" means exactly equal. This is the
    /// identity behind checkpoint validation and the serve result
    /// cache.
    pub fn canonical(&self) -> String {
        let mut s = String::from("ringmesh-config/2");
        let _ = write!(s, "|net={}", self.network);
        let _ = write!(s, "|cl={}", self.cache_line.bytes());
        let w = &self.workload;
        let _ = write!(s, "|R={:016x}", w.region.to_bits());
        let _ = write!(s, "|C={:016x}", w.miss_rate.to_bits());
        let _ = write!(s, "|T={}", w.outstanding);
        let _ = write!(s, "|read={:016x}", w.read_fraction.to_bits());
        let _ = write!(
            s,
            "|proc={}",
            match w.miss_process {
                MissProcess::Deterministic => "det",
                MissProcess::Geometric => "geo",
            }
        );
        match &w.hot_spot {
            Some(h) => {
                let _ = write!(s, "|hot={}:{:016x}", h.node, h.fraction.to_bits());
            }
            None => s.push_str("|hot=-"),
        }
        let _ = write!(s, "|mem={}:{}", self.memory.latency, self.memory.occupancy);
        let _ = write!(
            s,
            "|sim={}:{}:{}",
            self.sim.warmup, self.sim.batch_cycles, self.sim.batches
        );
        let _ = write!(s, "|seed={}", self.seed);
        s
    }

    /// FNV-1a digest of [`canonical`](Self::canonical) — the compact
    /// config identity stored in checkpoints and cache keys.
    pub fn fingerprint(&self) -> u64 {
        Fingerprint::of(self.canonical().as_bytes())
    }

    /// Checks the cross-field invariants the type system cannot:
    /// network shape, workload parameter ranges, memory timing and
    /// measurement lengths. Construction-time validators ([`RingSpec`]
    /// parsing, `MeshTopology::try_new`) catch shape errors earlier;
    /// this is the single choke point every run path goes through.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let NetworkSpec::Mesh { side: 0, .. } = self.network {
            return Err(ConfigError::ZeroMeshSide);
        }
        if let NetworkSpec::Hybrid { side, local } = self.network {
            if side == 0 {
                return Err(ConfigError::ZeroMeshSide);
            }
            if local == 0 {
                return Err(ConfigError::Invalid(
                    "hybrid local ring size must be positive".into(),
                ));
            }
        }
        let w = &self.workload;
        if !(w.region > 0.0 && w.region <= 1.0) {
            return Err(ConfigError::Invalid(format!(
                "access region R = {} must be in (0, 1]",
                w.region
            )));
        }
        if !(w.miss_rate > 0.0 && w.miss_rate <= 1.0) {
            return Err(ConfigError::Invalid(format!(
                "miss rate C = {} must be in (0, 1]",
                w.miss_rate
            )));
        }
        if w.outstanding == 0 {
            return Err(ConfigError::Invalid(
                "outstanding limit T must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&w.read_fraction) {
            return Err(ConfigError::Invalid(format!(
                "read fraction {} must be in [0, 1]",
                w.read_fraction
            )));
        }
        if let Some(h) = &w.hot_spot {
            if h.node >= self.network.num_pms() {
                return Err(ConfigError::Invalid(format!(
                    "hot-spot node {} out of range for {} PMs",
                    h.node,
                    self.network.num_pms()
                )));
            }
            if !(0.0..=1.0).contains(&h.fraction) {
                return Err(ConfigError::Invalid(format!(
                    "hot-spot fraction {} must be in [0, 1]",
                    h.fraction
                )));
            }
        }
        if self.memory.latency == 0 || self.memory.occupancy == 0 {
            return Err(ConfigError::Invalid(
                "memory latency and occupancy must be positive".into(),
            ));
        }
        if self.sim.batch_cycles == 0 || self.sim.batches == 0 {
            return Err(ConfigError::Invalid(
                "measurement plan needs at least one non-empty batch".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_labels() {
        let r = NetworkSpec::ring("2:3:4".parse().unwrap());
        assert_eq!(r.label(), "ring 2:3:4");
        assert_eq!(r.num_pms(), 24);
        let m = NetworkSpec::mesh(6);
        assert_eq!(m.label(), "mesh 6x6 (4-flit buffers)");
        assert_eq!(m.num_pms(), 36);
        let f = NetworkSpec::Ring {
            spec: "3:3:4".parse().unwrap(),
            speedup: 2,
        };
        assert_eq!(f.label(), "ring 3:3:4 (2x global)");
    }

    #[test]
    fn topology_specs_round_trip() {
        // Every canonical spec string parses and re-prints unchanged,
        // and every NetworkSpec survives Display → FromStr.
        for s in [
            "ring:4",
            "ring:2:3:4",
            "ring2x:3:3:4",
            "slotted:2:3:4",
            "mesh:12",
            "mesh:12:1flit",
            "mesh:12:cl",
            "hybrid:4x4:4",
            "hybrid:2x2:8",
        ] {
            let spec: NetworkSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(spec.to_string(), s, "canonical form drifted for {s}");
            let again: NetworkSpec = spec.to_string().parse().unwrap();
            assert_eq!(spec, again);
        }
        // Non-canonical but accepted aliases normalise.
        let m: NetworkSpec = "mesh:6:4flit".parse().unwrap();
        assert_eq!(m.to_string(), "mesh:6");
        let r: NetworkSpec = "ring1x:2:4".parse().unwrap();
        assert_eq!(r.to_string(), "ring:2:4");
    }

    #[test]
    fn malformed_topology_specs_draw_typed_errors() {
        for s in [
            "",
            "ring",
            "mesh",
            "torus:4",
            "ring:",
            "ring:0",
            "ring:a:b",
            "ring3x:2:3:4",
            "ringx:2:3:4",
            "mesh:0",
            "mesh:abc",
            "mesh:4:8flit",
            "hybrid:4x4",
            "hybrid:4x5:4",
            "hybrid:0x0:4",
            "hybrid:4x4:0",
            "hybrid:axa:4",
            "hybrid:4x4:x",
        ] {
            let err = s.parse::<NetworkSpec>().expect_err(s);
            // Typed errors render a message; none of these may panic.
            assert!(!err.to_string().is_empty(), "{s}");
        }
    }

    #[test]
    fn hybrid_spec_identity() {
        let h = NetworkSpec::Hybrid { side: 4, local: 4 };
        assert_eq!(h.num_pms(), 64);
        assert_eq!(h.label(), "hybrid 4x4 mesh of 4-PM rings");
        assert_eq!(h.to_string(), "hybrid:4x4:4");
        assert!(h.builder().parallel_kernel());
    }

    #[test]
    fn validate_rejects_zero_hybrid_dims() {
        let cfg = SystemConfig::new(
            NetworkSpec::Hybrid { side: 0, local: 4 },
            CacheLineSize::B64,
        );
        assert!(cfg.validate().is_err());
        let cfg = SystemConfig::new(
            NetworkSpec::Hybrid { side: 2, local: 0 },
            CacheLineSize::B64,
        );
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn canonical_uses_spec_strings() {
        let cfg = SystemConfig::new(NetworkSpec::mesh(3), CacheLineSize::B64);
        assert!(cfg.canonical().starts_with("ringmesh-config/2|net=mesh:3|"));
    }

    #[test]
    fn sim_horizon() {
        assert_eq!(SimParams::full().horizon(), 36_000);
        assert!(SimParams::quick().horizon() < SimParams::full().horizon());
    }

    #[test]
    fn canonical_covers_every_output_relevant_field() {
        let base = SystemConfig::new(NetworkSpec::mesh(3), CacheLineSize::B64);
        assert_eq!(base.canonical(), base.clone().canonical());
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
        let variants = [
            SystemConfig::new(NetworkSpec::mesh(4), CacheLineSize::B64),
            SystemConfig::new(NetworkSpec::mesh(3), CacheLineSize::B32),
            base.clone()
                .with_workload(WorkloadParams::paper_baseline().with_region(0.5)),
            base.clone().with_sim(SimParams::quick()),
            base.clone().with_seed(99),
        ];
        for v in variants {
            assert_ne!(base.canonical(), v.canonical(), "{}", v.canonical());
            assert_ne!(base.fingerprint(), v.fingerprint());
        }
    }
}
