//! Ring topology selection: the paper's Table 2 plus a search that
//! generalizes its policy to arbitrary node counts.
//!
//! The paper's selection rules (derived in its §3):
//!
//! * a single ring conservatively sustains 12/8/6/4 PMs for
//!   16/32/64/128-byte cache lines (Figure 6);
//! * an upper-level ring sustains at most ~3 child rings before the
//!   global ring saturates — a bisection-bandwidth limit independent of
//!   the cache line size (Figures 7–10);
//! * hence 3-level systems reach 108/72/54/36 PMs, and double-speed
//!   global rings stretch that to 5 child rings (§6: 180/120/90/60).

use ringmesh_net::CacheLineSize;
use ringmesh_ring::RingSpec;

/// Maximum PMs a single ring sustains with almost no degradation
/// (paper, Figure 6).
pub fn single_ring_max(cl: CacheLineSize) -> u32 {
    match cl {
        CacheLineSize::B16 => 12,
        CacheLineSize::B32 => 8,
        CacheLineSize::B64 => 6,
        CacheLineSize::B128 => 4,
    }
}

/// Maximum PMs a 3-level hierarchy reasonably supports (paper, §3).
pub fn three_level_max(cl: CacheLineSize) -> u32 {
    match cl {
        CacheLineSize::B16 => 108,
        CacheLineSize::B32 => 72,
        CacheLineSize::B64 => 54,
        CacheLineSize::B128 => 36,
    }
}

/// Maximum PMs with a double-speed global ring: 5 second-level rings
/// (paper, §6).
pub fn double_speed_max(cl: CacheLineSize) -> u32 {
    match cl {
        CacheLineSize::B16 => 180,
        CacheLineSize::B32 => 120,
        CacheLineSize::B64 => 90,
        CacheLineSize::B128 => 60,
    }
}

/// The paper's Table 2: optimal hierarchical ring topology for the
/// given processor count and cache line size (workloads with R = 1.0,
/// C = 0.04). Returns `None` for (P, cl) pairs not in the table.
pub fn table2(p: u32, cl: CacheLineSize) -> Option<RingSpec> {
    use CacheLineSize::*;
    let spec = match (p, cl) {
        (4, B16) | (4, B32) | (4, B64) | (4, B128) => "4",
        (6, B16) | (6, B32) | (6, B64) => "6",
        (6, B128) => "2:3",
        (8, B16) | (8, B32) => "8",
        (8, B64) | (8, B128) => "2:4",
        (12, B16) => "12",
        (12, B32) | (12, B64) => "2:6",
        (12, B128) => "3:4",
        (18, B16) => "2:9",
        (18, B32) | (18, B64) => "3:6",
        (18, B128) => "3:2:3",
        (24, B16) => "2:12",
        (24, B32) => "3:8",
        (24, B64) => "2:2:6",
        (24, B128) => "2:3:4",
        (36, B16) => "3:12",
        (36, B32) | (36, B64) => "2:3:6",
        (36, B128) => "3:3:4",
        (54, B16) => "2:3:9",
        (54, B32) | (54, B64) => "3:3:6",
        (54, B128) => "3:3:2:3",
        (72, B16) => "2:3:12",
        (72, B32) => "3:3:8",
        (72, B64) => "2:2:3:6",
        (72, B128) => "2:3:3:4",
        (108, B16) => "3:3:12",
        (108, B32) | (108, B64) => "2:3:3:6",
        (108, B128) => "3:3:3:4",
        _ => return None,
    };
    Some(spec.parse().expect("table entries are valid specs"))
}

/// Finds the best ring spec for `p` PMs under the paper's selection
/// policy, optionally constrained to exactly `levels` hierarchy levels.
///
/// The search enumerates all ordered factorizations of `p` into at most
/// 4 levels and scores them lexicographically: fewest levels (subject to
/// the leaf fitting a single ring), fewest over-limit arities (leaves
/// beyond [`single_ring_max`], non-leaf fan-outs beyond 3), then the
/// largest leaf ring. Returns `None` only if `levels` is given and `p`
/// has no factorization with that many levels.
pub fn best_spec(p: u32, cl: CacheLineSize, levels: Option<usize>) -> Option<RingSpec> {
    assert!(p >= 1, "need at least one PM");
    let leaf_max = single_ring_max(cl);
    let mut best: Option<(u64, Vec<u32>)> = None;
    let mut consider = |arities: &[u32]| {
        if let Some(l) = levels {
            if arities.len() != l {
                return;
            }
        }
        let leaf = *arities.last().expect("non-empty");
        let leaf_over = leaf.saturating_sub(leaf_max) as u64;
        let fan_over: u64 = arities[..arities.len() - 1]
            .iter()
            .map(|&a| u64::from(a.saturating_sub(3)))
            .sum();
        // Lexicographic score packed into one integer: over-limit
        // penalties dominate, then level count, then small leaves.
        let score = (leaf_over * 100 + fan_over) * 1_000_000
            + (arities.len() as u64) * 1_000
            + u64::from(leaf_max.saturating_sub(leaf));
        if best.as_ref().is_none_or(|(s, _)| score < *s) {
            best = Some((score, arities.to_vec()));
        }
    };
    // Depth-first enumeration of ordered factorizations (root-first).
    let mut stack = vec![p];
    factorize(&mut stack, p, &mut consider);
    let (_, arities) = best?;
    Some(RingSpec::new(arities).expect("search yields valid arities"))
}

/// Enumerates ordered factorizations: `prefix` currently ends with the
/// unfactored remainder; each call either accepts it as the leaf or
/// splits off another level.
fn factorize(prefix: &mut Vec<u32>, remainder: u32, consider: &mut impl FnMut(&[u32])) {
    consider(prefix);
    if prefix.len() >= 4 {
        return;
    }
    for a in 2..=remainder / 2 {
        if remainder.is_multiple_of(a) {
            let rest = remainder / a;
            // Replace the trailing remainder with (a, rest).
            prefix.pop();
            prefix.push(a);
            prefix.push(rest);
            factorize(prefix, rest, consider);
            prefix.pop();
            prefix.pop();
            prefix.push(remainder);
        }
    }
}

/// The ring-natural system-size ladder for latency-vs-size sweeps:
/// every Table 2 size plus the single-ring sizes, up to `max_pms`.
pub fn ring_size_ladder(cl: CacheLineSize, max_pms: u32) -> Vec<(u32, RingSpec)> {
    let mut out: Vec<(u32, RingSpec)> = Vec::new();
    for p in 2..=single_ring_max(cl) {
        if p <= max_pms {
            out.push((p, RingSpec::single(p)));
        }
    }
    for p in [12, 18, 24, 36, 54, 72, 108] {
        if p <= max_pms && out.iter().all(|&(q, _)| q != p) {
            if let Some(spec) = table2(p, cl) {
                out.push((p, spec));
            }
        }
    }
    out.sort_by_key(|&(p, _)| p);
    out
}

/// Mesh-natural sizes: perfect squares `4..=max_pms`.
pub fn mesh_size_ladder(max_pms: u32) -> Vec<u32> {
    (2..).map(|s| s * s).take_while(|&p| p <= max_pms).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_products_match_processor_counts() {
        for &p in &[4u32, 6, 8, 12, 18, 24, 36, 54, 72, 108] {
            for &cl in &CacheLineSize::ALL {
                let spec = table2(p, cl).unwrap_or_else(|| panic!("missing ({p}, {cl})"));
                assert_eq!(spec.num_pms(), p, "({p}, {cl}) -> {spec}");
            }
        }
    }

    #[test]
    fn table2_leaves_fit_single_ring_limits() {
        for &p in &[4u32, 6, 8, 12, 18, 24, 36, 54, 72, 108] {
            for &cl in &CacheLineSize::ALL {
                let spec = table2(p, cl).unwrap();
                let leaf = *spec.arities().last().unwrap();
                assert!(
                    leaf <= single_ring_max(cl),
                    "({p}, {cl}) leaf {leaf} > {}",
                    single_ring_max(cl)
                );
            }
        }
    }

    #[test]
    fn table2_fanouts_at_most_three() {
        for &p in &[4u32, 6, 8, 12, 18, 24, 36, 54, 72, 108] {
            for &cl in &CacheLineSize::ALL {
                let spec = table2(p, cl).unwrap();
                let arities = spec.arities();
                assert!(
                    arities[..arities.len() - 1].iter().all(|&a| a <= 3),
                    "({p}, {cl}) -> {spec}"
                );
            }
        }
    }

    #[test]
    fn unknown_table_entries_are_none() {
        assert!(table2(17, CacheLineSize::B32).is_none());
        assert!(table2(121, CacheLineSize::B16).is_none());
    }

    #[test]
    fn best_spec_prefers_single_ring_when_it_fits() {
        let s = best_spec(6, CacheLineSize::B16, None).unwrap();
        assert_eq!(s.to_string(), "6");
    }

    #[test]
    fn best_spec_splits_when_single_ring_overflows() {
        // 12 PMs with 32B lines: single ring max is 8, so go 2-level.
        let s = best_spec(12, CacheLineSize::B32, None).unwrap();
        assert_eq!(s.levels(), 2);
        assert_eq!(s.num_pms(), 12);
        let leaf = *s.arities().last().unwrap();
        assert!(leaf <= 8);
    }

    #[test]
    fn best_spec_matches_table2_shape() {
        // The generalized policy should agree with Table 2 on level
        // counts for the canonical sizes.
        for &(p, cl) in &[
            (24u32, CacheLineSize::B16),
            (24, CacheLineSize::B32),
            (36, CacheLineSize::B64),
            (108, CacheLineSize::B16),
        ] {
            let ours = best_spec(p, cl, None).unwrap();
            let table = table2(p, cl).unwrap();
            assert_eq!(
                ours.levels(),
                table.levels(),
                "p={p} cl={cl}: {ours} vs {table}"
            );
        }
    }

    #[test]
    fn best_spec_respects_level_constraint() {
        let s = best_spec(54, CacheLineSize::B32, Some(3)).unwrap();
        assert_eq!(s.levels(), 3);
        assert_eq!(s.num_pms(), 54);
        // A prime cannot be split into 2 levels.
        assert!(best_spec(7, CacheLineSize::B32, Some(2)).is_none());
    }

    #[test]
    fn best_spec_handles_awkward_sizes() {
        // 25, 49, 121: mesh-natural sizes that rings must approximate
        // with over-limit arities rather than fail.
        for p in [25u32, 49, 121] {
            let s = best_spec(p, CacheLineSize::B32, None).unwrap();
            assert_eq!(s.num_pms(), p);
        }
    }

    #[test]
    fn ladders_are_sorted_and_bounded() {
        let ladder = ring_size_ladder(CacheLineSize::B32, 72);
        assert!(ladder.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(ladder.iter().all(|&(p, _)| p <= 72));
        assert!(ladder.iter().any(|&(p, _)| p == 72));
        let meshes = mesh_size_ladder(121);
        assert_eq!(meshes, vec![4, 9, 16, 25, 36, 49, 64, 81, 100, 121]);
    }

    #[test]
    fn max_size_tables_match_paper() {
        use CacheLineSize::*;
        assert_eq!([B16, B32, B64, B128].map(single_ring_max), [12, 8, 6, 4]);
        assert_eq!(
            [B16, B32, B64, B128].map(three_level_max),
            [108, 72, 54, 36]
        );
        assert_eq!(
            [B16, B32, B64, B128].map(double_speed_max),
            [180, 120, 90, 60]
        );
    }
}
