//! One simulated system: a network plus the M-MRP workload driving it.

use std::error::Error;
use std::fmt;

use ringmesh_engine::{StallError, Watchdog};
use ringmesh_faults::{ConservationError, FaultConfig, FaultInjector, FaultReport, FaultSchedule};
use ringmesh_net::{ConfigError, Interconnect, NodeId, Packet, UtilizationReport};
use ringmesh_ring::{RingConfig, RingNetwork};
use ringmesh_snap::{
    read_header, write_header, Fingerprint, SnapError, SnapReader, SnapWriter, SnapshotState,
};
use ringmesh_stats::{BatchMeans, Histogram, Summary};
use ringmesh_trace::{TraceConfig, TraceReport, Tracer};
use ringmesh_workload::{Mmrp, MmrpStats, PacketSizer, Placement, RetryPolicy, RetryStats};

use crate::config::{NetworkSpec, SystemConfig};

/// Failure modes of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The network watchdog detected a deadlock-like stall.
    Stall(StallError),
    /// The configuration is invalid (e.g. a non-square mesh size).
    InvalidConfig(ConfigError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Stall(e) => write!(f, "simulation stalled: {e}"),
            RunError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl Error for RunError {}

impl From<StallError> for RunError {
    fn from(e: StallError) -> Self {
        RunError::Stall(e)
    }
}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::InvalidConfig(e)
    }
}

/// Results of one simulation point.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Round-trip access latency across batch means, in network cycles.
    pub latency: Summary,
    /// Latency percentiles `(p50, p95, p99)` over all post-warm-up
    /// transactions (to ~5% bucket resolution); `None` if none
    /// completed.
    pub percentiles: Option<(f64, f64, f64)>,
    /// Completed transactions per cycle over the measurement horizon
    /// (system throughput).
    pub throughput: f64,
    /// Network utilization over the measurement horizon.
    pub utilization: UtilizationReport,
    /// Workload counters over the whole run (including warm-up).
    pub workload: MmrpStats,
    /// Number of processing modules simulated.
    pub pms: u32,
}

impl RunResult {
    /// Mean round-trip latency in cycles — the paper's primary measure.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean
    }

    /// A 64-bit digest over the raw bits of every field: two results
    /// fingerprint equal exactly when they are bit-identical. Used to
    /// prove a resumed run matches an uninterrupted one and to verify
    /// cached serve results against fresh re-runs.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.latency.n as u64);
        fp.write_f64(self.latency.mean);
        fp.write_f64(self.latency.std_dev);
        fp.write_f64(self.latency.ci95);
        fp.write_f64(self.latency.min);
        fp.write_f64(self.latency.max);
        match self.percentiles {
            Some((p50, p95, p99)) => {
                fp.write_u64(1);
                fp.write_f64(p50);
                fp.write_f64(p95);
                fp.write_f64(p99);
            }
            None => fp.write_u64(0),
        }
        fp.write_f64(self.throughput);
        fp.write_f64(self.utilization.overall);
        fp.write_u64(self.utilization.levels.len() as u64);
        for level in &self.utilization.levels {
            fp.write_str(&level.label);
            fp.write_f64(level.utilization);
        }
        fp.write_u64(self.workload.issued);
        fp.write_u64(self.workload.retired);
        fp.write_u64(self.workload.local_retired);
        fp.write_u64(u64::from(self.pms));
        fp.finish()
    }
}

/// What to break during a [`System::run_faulty`] run and how the
/// endpoints should defend themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Fault classes, rates and seed (see [`FaultConfig`]).
    pub faults: FaultConfig,
    /// End-to-end timeout/retry policy at the processors; `None` leaves
    /// dropped transactions unrecovered (their slots leak until the
    /// stall watchdog trips — useful to demonstrate why the layer
    /// exists).
    pub retry: Option<RetryPolicy>,
    /// Force exact per-packet conservation tracking even in release
    /// builds (always on in debug builds).
    pub check: bool,
}

impl FaultPlan {
    /// A plan running `faults` with the default retry policy and no
    /// release-mode conservation tracking.
    pub fn new(faults: FaultConfig) -> Self {
        FaultPlan {
            faults,
            retry: Some(RetryPolicy::default()),
            check: false,
        }
    }

    /// Returns the plan with a specific retry policy.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Returns the plan with the retry layer disabled.
    #[must_use]
    pub fn without_retry(mut self) -> Self {
        self.retry = None;
        self
    }

    /// Returns the plan with conservation tracking forced on.
    #[must_use]
    pub fn with_check(mut self) -> Self {
        self.check = true;
        self
    }
}

/// Results of a faulty run: the usual measurements plus fault, retry
/// and conservation accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRunReport {
    /// The ordinary measurement results (latency only samples
    /// transactions that completed; throughput is *delivered*
    /// throughput).
    pub result: RunResult,
    /// What the injector did: drops by reason, corruption marks,
    /// link-down events applied, nodes killed.
    pub faults: FaultReport,
    /// End-to-end layer counters (zero when retry was disabled).
    pub retry: RetryStats,
    /// `(injected, delivered, dropped)` ledger totals, when the network
    /// keeps a conservation ledger.
    pub conservation: Option<(u64, u64, u64)>,
    /// A detected conservation violation — always `None` unless the
    /// simulator itself is buggy; surfaced so harnesses can fail loudly
    /// instead of publishing corrupt numbers.
    pub violation: Option<ConservationError>,
}

/// A ready-to-run simulation: network + workload + measurement plan.
///
/// # Example
///
/// ```
/// use ringmesh::{NetworkSpec, SimParams, System, SystemConfig};
/// use ringmesh_net::CacheLineSize;
///
/// let cfg = SystemConfig::new(NetworkSpec::mesh(2), CacheLineSize::B32)
///     .with_sim(SimParams::quick());
/// let result = System::new(cfg)?.run()?;
/// assert!(result.mean_latency() > 0.0);
/// # Ok::<(), ringmesh::RunError>(())
/// ```
pub struct System {
    cfg: SystemConfig,
    net: Box<dyn Interconnect>,
    workload: Mmrp,
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("network", &self.cfg.network.label())
            .field("pms", &self.cfg.network.num_pms())
            .finish()
    }
}

impl System {
    /// Builds the network and workload described by `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidConfig`] for inconsistent
    /// configurations.
    pub fn new(cfg: SystemConfig) -> Result<System, RunError> {
        cfg.validate()?;
        // The topology registry is the only place a NetworkSpec becomes
        // a network: construction, placement and packet format all come
        // off the same builder.
        let builder = cfg.network.builder();
        let net = builder.build(cfg.cache_line)?;
        let sizer = PacketSizer {
            format: builder.format(),
            cache_line: cfg.cache_line,
        };
        let workload = Mmrp::new(
            builder.placement(),
            cfg.workload,
            cfg.memory,
            sizer,
            cfg.seed,
        );
        let mut sys = System { cfg, net, workload };
        // Size the intra-cycle kernel from the process-wide setting
        // (`--kernel-threads` / RINGMESH_KERNEL_THREADS, clamped under
        // an active sweep). Purely a performance knob: stepping is
        // byte-identical at any count, and the thread count is not part
        // of the config fingerprint.
        sys.net
            .set_kernel_threads(ringmesh_engine::effective_kernel_threads());
        Ok(sys)
    }

    /// Re-sizes the network's intra-cycle kernel (see
    /// [`Interconnect::set_kernel_threads`]); overrides the count
    /// applied from the global setting at construction. Safe at any
    /// point between steps — results are byte-identical at any count.
    pub fn set_kernel_threads(&mut self, threads: usize) {
        self.net.set_kernel_threads(threads);
    }

    /// The number of compute threads the network kernel currently uses.
    pub fn kernel_threads(&self) -> usize {
        self.net.kernel_threads()
    }

    /// Builds a system with an explicitly-tuned ring network (e.g. a
    /// finite IRI queue capacity for flow-control ablations). The
    /// `cfg.network` must be a `Ring` variant supplying the topology;
    /// the cache line of `ring_cfg` overrides `cfg.cache_line`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidConfig`] if `cfg.network` is not a
    /// ring.
    pub fn with_ring_config(cfg: SystemConfig, ring_cfg: RingConfig) -> Result<System, RunError> {
        let NetworkSpec::Ring { spec, .. } = &cfg.network else {
            return Err(RunError::InvalidConfig(
                "with_ring_config requires a ring network spec".into(),
            ));
        };
        let net = RingNetwork::new(spec, ring_cfg.clone());
        let sizer = PacketSizer {
            format: ring_cfg.format,
            cache_line: ring_cfg.cache_line,
        };
        let workload = Mmrp::new(
            Placement::Linear {
                pms: spec.num_pms(),
            },
            cfg.workload,
            cfg.memory,
            sizer,
            cfg.seed,
        );
        Ok(System {
            cfg,
            net: Box::new(net),
            workload,
        })
    }

    /// Runs the full batch-means measurement and reports the results.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Stall`] if the network deadlocks.
    pub fn run(mut self) -> Result<RunResult, RunError> {
        self.run_mut()
    }

    /// Runs like [`run`](System::run) with a recording tracer installed
    /// in the network, and returns the finalized trace alongside the
    /// results.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Stall`] if the network deadlocks.
    pub fn run_traced(mut self, tcfg: TraceConfig) -> Result<(RunResult, TraceReport), RunError> {
        self.net.set_tracer(Tracer::recording(tcfg));
        let result = self.run_mut()?;
        let report = self
            .net
            .take_tracer()
            .and_then(Tracer::finish)
            .expect("recording tracer was installed");
        Ok((result, report))
    }

    /// Runs like [`run`](System::run) with a fault schedule installed
    /// in the network and (optionally) the end-to-end retry layer
    /// protecting transactions, then audits packet conservation.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidConfig`] if `plan` asks for faults on
    /// a network that exposes no fault domain (e.g. the slotted ring),
    /// and [`RunError::Stall`] if the network — or the system as a
    /// whole — stops making progress.
    pub fn run_faulty(mut self, plan: &FaultPlan) -> Result<FaultRunReport, RunError> {
        let domain = self.net.fault_domain();
        if plan.faults.is_active() && domain.is_empty() {
            return Err(RunError::InvalidConfig(ConfigError::Invalid(format!(
                "network '{}' does not support fault injection",
                self.cfg.network.label()
            ))));
        }
        let schedule = FaultSchedule::generate(&plan.faults, domain);
        self.net
            .set_faults(FaultInjector::new(&schedule, domain), plan.check);
        if let Some(policy) = plan.retry {
            self.workload.set_retry(policy);
        }
        let result = self.run_mut()?;
        let violation = self.net.verify_conservation().err();
        Ok(FaultRunReport {
            result,
            faults: self
                .net
                .take_faults()
                .map(|f| f.report())
                .unwrap_or_default(),
            retry: self.workload.retry_stats(),
            conservation: self.net.conservation_counts(),
            violation,
        })
    }

    fn run_mut(&mut self) -> Result<RunResult, RunError> {
        let mut state = self.begin();
        self.run_to(&mut state, u64::MAX)?;
        Ok(self.finish(&state))
    }

    /// Starts a measurement, returning the loop state that
    /// [`run_to`](Self::run_to) advances. The split run API exists for
    /// checkpoint/resume: `begin` + `run_to(u64::MAX)` + `finish` is
    /// exactly [`run`](Self::run).
    pub fn begin(&self) -> RunState {
        let sim = self.cfg.sim;
        RunState {
            latency: BatchMeans::new(sim.warmup, sim.batch_cycles, sim.batches),
            histogram: Histogram::new(),
            // System-level watchdog: the networks watch their own
            // flits, but a wedged memory module or a workload whose
            // transactions all vanish (faults without retry) stalls
            // with an idle network. Completions count as end-to-end
            // progress, and so does retry-layer activity — attempt
            // counters are bounded per transaction, so sustained
            // retries/give-ups mean the protocol is live even when
            // nothing is getting through.
            dog: Watchdog::new((sim.horizon() / 4).max(2_000)),
            prev_activity: 0,
        }
    }

    /// Advances the measurement until it completes or the network clock
    /// reaches `stop`, whichever comes first. Returns `true` when the
    /// measurement is complete (call [`finish`](Self::finish)), `false`
    /// when it paused at `stop` (checkpoint and/or call again).
    /// Stopping and resuming at any cycle is invisible to the result:
    /// the loop carries no state outside `self` and `state`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Stall`] if the network deadlocks.
    pub fn run_to(&mut self, state: &mut RunState, stop: u64) -> Result<bool, RunError> {
        let sim = self.cfg.sim;
        let mut delivered: Vec<(NodeId, Packet)> = Vec::new();
        let mut samples: Vec<(u64, f64)> = Vec::new();
        let net = self.net.as_mut();
        while !state.latency.is_complete(net.cycle()) {
            let now = net.cycle();
            if now >= stop {
                return Ok(false);
            }
            if now == sim.warmup {
                net.reset_counters();
            }
            samples.clear();
            self.workload.pre_cycle(net, now, &mut samples);
            delivered.clear();
            net.step(&mut delivered)?;
            // Deliveries happen during cycle `now`; timestamp them so.
            self.workload.post_cycle(net, &delivered, now, &mut samples);
            for &(t, v) in &samples {
                state.latency.record(t, v);
                if t >= sim.warmup {
                    state.histogram.record(v);
                }
            }
            let r = self.workload.retry_stats();
            let activity = r.timeouts + r.retries + r.gave_up;
            let progress = samples.len() as u64 + (activity - state.prev_activity);
            state.prev_activity = activity;
            state
                .dog
                .observe(now, progress, self.workload.outstanding());
            state.dog.check(now)?;
        }
        Ok(true)
    }

    /// Assembles the results of a completed measurement.
    pub fn finish(&self, state: &RunState) -> RunResult {
        RunResult {
            latency: state.latency.summary(),
            percentiles: state.histogram.p50_p95_p99(),
            throughput: state.latency.rate_per_cycle(),
            utilization: self.net.utilization(),
            workload: self.workload.stats(),
            pms: self.cfg.network.num_pms(),
        }
    }

    /// The network clock, for choosing checkpoint instants.
    pub fn cycle(&self) -> u64 {
        self.net.cycle()
    }

    /// Workload counters so far — live progress for streaming callers
    /// of [`run_to`](Self::run_to).
    pub fn workload_stats(&self) -> MmrpStats {
        self.workload.stats()
    }

    /// Installs a tracer on the network; networks without trace support
    /// drop it. Streaming servers attach custom [`ringmesh_trace`]
    /// sinks this way and drain them between [`run_to`](Self::run_to)
    /// pauses ([`run_traced`](Self::run_traced) is the whole-run
    /// convenience form).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.net.set_tracer(tracer);
    }

    /// Serializes the full mutable simulation state — network, workload
    /// and measurement loop — between cycles. A [`System`] freshly
    /// built from the same [`SystemConfig`] can
    /// [`restore`](Self::restore) these bytes and continue
    /// bit-identically to a run that never stopped.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::Mismatch`] for networks that do not support
    /// snapshots or have a fault injector installed.
    pub fn checkpoint(&self, state: &RunState) -> Result<Vec<u8>, SnapError> {
        let mut w = SnapWriter::new();
        write_header(&mut w, "checkpoint");
        w.u64(self.cfg.fingerprint());
        w.u64(self.net.cycle());
        self.net.save_state(&mut w)?;
        self.workload.save_state(&mut w);
        state.latency.save_state(&mut w);
        state.histogram.save_state(&mut w);
        state.dog.save_state(&mut w);
        w.u64(state.prev_activity);
        Ok(w.into_bytes())
    }

    /// Restores a [`checkpoint`](Self::checkpoint) into this system,
    /// which must have been built from the *same* configuration (the
    /// config fingerprint is validated). On success the measurement
    /// continues from the checkpointed cycle via
    /// [`run_to`](Self::run_to).
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on truncated, corrupt or mismatched bytes;
    /// `self` may be partially restored and must be discarded then.
    pub fn restore(&mut self, state: &mut RunState, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        read_header(&mut r, "checkpoint")?;
        let fp = r.u64()?;
        if fp != self.cfg.fingerprint() {
            return Err(SnapError::Mismatch(format!(
                "checkpoint is for config {:016x}, this system is {:016x}",
                fp,
                self.cfg.fingerprint()
            )));
        }
        let cycle = r.u64()?;
        self.net.restore_state(&mut r)?;
        if self.net.cycle() != cycle {
            return Err(SnapError::Corrupt(format!(
                "network restored to cycle {}, checkpoint header says {cycle}",
                self.net.cycle()
            )));
        }
        self.workload.restore_state(&mut r)?;
        state.latency.restore_state(&mut r)?;
        state.histogram.restore_state(&mut r)?;
        state.dog.restore_state(&mut r)?;
        state.prev_activity = r.u64()?;
        Ok(())
    }
}

/// Resumable state of the measurement loop — everything
/// [`System::run_to`] tracks outside the network and workload. Created
/// by [`System::begin`], serialized inside [`System::checkpoint`].
#[derive(Debug)]
pub struct RunState {
    latency: BatchMeans,
    histogram: Histogram,
    dog: Watchdog,
    prev_activity: u64,
}

/// Builds and runs `cfg` in one call.
///
/// # Errors
///
/// Propagates [`System::new`] and [`System::run`] errors.
pub fn run_config(cfg: SystemConfig) -> Result<RunResult, RunError> {
    System::new(cfg)?.run()
}

/// Runs a pre-built network under `cfg`'s workload and measurement
/// plan (for ablations that tune network internals beyond what
/// [`NetworkSpec`] exposes). The placement and packet format are
/// derived from `cfg.network`, which must describe the same network
/// shape as `net`.
pub(crate) fn run_prebuilt(
    net: Box<dyn Interconnect>,
    cfg: SystemConfig,
) -> Result<RunResult, RunError> {
    let builder = cfg.network.builder();
    let (placement, format) = (builder.placement(), builder.format());
    if net.num_pms() != cfg.network.num_pms() as usize {
        return Err(RunError::InvalidConfig(
            "prebuilt network size does not match the config".into(),
        ));
    }
    let sizer = PacketSizer {
        format,
        cache_line: cfg.cache_line,
    };
    let workload = Mmrp::new(placement, cfg.workload, cfg.memory, sizer, cfg.seed);
    let mut sys = System { cfg, net, workload };
    sys.net
        .set_kernel_threads(ringmesh_engine::effective_kernel_threads());
    sys.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimParams;
    use ringmesh_net::CacheLineSize;
    use ringmesh_workload::WorkloadParams;

    fn quick(network: NetworkSpec, cl: CacheLineSize) -> SystemConfig {
        SystemConfig::new(network, cl).with_sim(SimParams::quick())
    }

    #[test]
    fn small_ring_runs_and_measures() {
        let cfg = quick(NetworkSpec::ring("4".parse().unwrap()), CacheLineSize::B32);
        let r = run_config(cfg).unwrap();
        assert!(r.latency.n >= 4, "batches populated: {:?}", r.latency);
        // Zero-load-ish latency on a 4-ring: a couple of hops + memory.
        assert!(
            r.mean_latency() > 10.0 && r.mean_latency() < 100.0,
            "{}",
            r.mean_latency()
        );
        assert!(r.throughput > 0.0);
        assert!(r.workload.retired > 0);
    }

    #[test]
    fn small_mesh_runs_and_measures() {
        let cfg = quick(NetworkSpec::mesh(2), CacheLineSize::B32);
        let r = run_config(cfg).unwrap();
        assert!(
            r.mean_latency() > 10.0 && r.mean_latency() < 200.0,
            "{}",
            r.mean_latency()
        );
        assert!(r.utilization.overall > 0.0);
    }

    #[test]
    fn equal_seeds_replay_exactly() {
        let cfg = quick(
            NetworkSpec::ring("2:3".parse().unwrap()),
            CacheLineSize::B64,
        );
        let a = run_config(cfg.clone()).unwrap();
        let b = run_config(cfg).unwrap();
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.workload, b.workload);
    }

    #[test]
    fn different_seeds_differ() {
        let base = quick(
            NetworkSpec::ring("2:3".parse().unwrap()),
            CacheLineSize::B64,
        );
        let a = run_config(base.clone().with_seed(1)).unwrap();
        let b = run_config(base.with_seed(2)).unwrap();
        assert_ne!(a.latency.mean, b.latency.mean);
    }

    #[test]
    fn issued_eventually_retire() {
        let cfg = quick(NetworkSpec::mesh(3), CacheLineSize::B16);
        let r = run_config(cfg).unwrap();
        // Closed-loop with T=4: in-flight at the end is at most 4 per PM.
        assert!(r.workload.issued - r.workload.retired <= 4 * 9);
    }

    #[test]
    fn locality_reduces_latency_on_rings() {
        let mk = |r: f64| {
            quick(
                NetworkSpec::ring("3:3:6".parse().unwrap()),
                CacheLineSize::B64,
            )
            .with_workload(
                WorkloadParams::paper_baseline()
                    .with_region(r)
                    .with_outstanding(2),
            )
        };
        let no_loc = run_config(mk(1.0)).unwrap();
        let loc = run_config(mk(0.1)).unwrap();
        assert!(
            loc.mean_latency() < no_loc.mean_latency(),
            "R=0.1 {} !< R=1.0 {}",
            loc.mean_latency(),
            no_loc.mean_latency()
        );
    }

    #[test]
    fn invalid_mesh_rejected() {
        let cfg = quick(
            NetworkSpec::Mesh {
                side: 0,
                buffers: ringmesh_net::BufferRegime::FourFlit,
            },
            CacheLineSize::B32,
        );
        assert!(matches!(System::new(cfg), Err(RunError::InvalidConfig(_))));
    }

    #[test]
    fn invalid_workload_rejected() {
        // The builder asserts on this itself; a hand-rolled struct can
        // still smuggle the value in, and validate() must catch it.
        let cfg = quick(NetworkSpec::mesh(2), CacheLineSize::B32).with_workload(WorkloadParams {
            region: 0.0,
            ..WorkloadParams::paper_baseline()
        });
        assert!(matches!(System::new(cfg), Err(RunError::InvalidConfig(_))));
    }

    fn fault_plan(horizon: u64) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed: 9,
            corrupt_prob: 0.02,
            link_down_events: 4,
            link_down_cycles: 300,
            dead_nodes: 1,
            horizon,
        })
        .with_check()
    }

    #[test]
    fn faulty_ring_run_conserves_and_reports() {
        let cfg = quick(
            NetworkSpec::ring("2:4".parse().unwrap()),
            CacheLineSize::B32,
        );
        let plan = fault_plan(cfg.sim.horizon());
        let r = System::new(cfg).unwrap().run_faulty(&plan).unwrap();
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.faults.nodes_killed == 1);
        assert!(r.result.workload.retired > 0, "traffic still flows");
        let (injected, delivered, dropped) = r.conservation.unwrap();
        assert!(injected >= delivered + dropped);
        assert_eq!(r.faults.drops.total(), dropped);
    }

    #[test]
    fn faulty_mesh_run_conserves_and_reports() {
        let cfg = quick(NetworkSpec::mesh(3), CacheLineSize::B32);
        let plan = fault_plan(cfg.sim.horizon());
        let r = System::new(cfg).unwrap().run_faulty(&plan).unwrap();
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.result.workload.retired > 0, "traffic still flows");
        let (injected, delivered, dropped) = r.conservation.unwrap();
        assert!(injected >= delivered + dropped);
    }

    #[test]
    fn faulty_runs_replay_bit_for_bit() {
        let cfg = quick(
            NetworkSpec::ring("2:4".parse().unwrap()),
            CacheLineSize::B32,
        );
        let plan = fault_plan(cfg.sim.horizon());
        let a = System::new(cfg.clone()).unwrap().run_faulty(&plan).unwrap();
        let b = System::new(cfg).unwrap().run_faulty(&plan).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn faults_on_slotted_ring_rejected() {
        let cfg = quick(
            NetworkSpec::SlottedRing {
                spec: "4".parse().unwrap(),
            },
            CacheLineSize::B32,
        );
        let plan = fault_plan(1_000);
        let r = System::new(cfg).unwrap().run_faulty(&plan);
        assert!(matches!(r, Err(RunError::InvalidConfig(_))));
    }

    #[test]
    fn inactive_fault_plan_matches_clean_run() {
        let cfg = quick(
            NetworkSpec::ring("2:3".parse().unwrap()),
            CacheLineSize::B64,
        );
        let clean = System::new(cfg.clone()).unwrap().run().unwrap();
        // An installed-but-empty schedule (plus the retry layer idling
        // above it) must not perturb the simulation in any way.
        let plan = FaultPlan::new(FaultConfig::none(5)).with_check();
        let faulty = System::new(cfg).unwrap().run_faulty(&plan).unwrap();
        assert_eq!(clean, faulty.result);
        assert_eq!(faulty.faults.drops.total(), 0);
        assert_eq!(faulty.retry, ringmesh_workload::RetryStats::default());
        assert!(faulty.violation.is_none());
    }
}
