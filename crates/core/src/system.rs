//! One simulated system: a network plus the M-MRP workload driving it.

use std::error::Error;
use std::fmt;

use ringmesh_engine::StallError;
use ringmesh_mesh::{MeshConfig, MeshNetwork, MeshTopology};
use ringmesh_net::{Interconnect, NodeId, Packet, PacketFormat, UtilizationReport};
use ringmesh_ring::{RingConfig, RingNetwork, SlottedRingNetwork};
use ringmesh_stats::{BatchMeans, Histogram, Summary};
use ringmesh_trace::{TraceConfig, TraceReport, Tracer};
use ringmesh_workload::{Mmrp, MmrpStats, PacketSizer, Placement};

use crate::config::{NetworkSpec, SystemConfig};

/// Failure modes of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The network watchdog detected a deadlock-like stall.
    Stall(StallError),
    /// The configuration is invalid (e.g. a non-square mesh size).
    InvalidConfig(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Stall(e) => write!(f, "simulation stalled: {e}"),
            RunError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl Error for RunError {}

impl From<StallError> for RunError {
    fn from(e: StallError) -> Self {
        RunError::Stall(e)
    }
}

/// Results of one simulation point.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Round-trip access latency across batch means, in network cycles.
    pub latency: Summary,
    /// Latency percentiles `(p50, p95, p99)` over all post-warm-up
    /// transactions (to ~5% bucket resolution); `None` if none
    /// completed.
    pub percentiles: Option<(f64, f64, f64)>,
    /// Completed transactions per cycle over the measurement horizon
    /// (system throughput).
    pub throughput: f64,
    /// Network utilization over the measurement horizon.
    pub utilization: UtilizationReport,
    /// Workload counters over the whole run (including warm-up).
    pub workload: MmrpStats,
    /// Number of processing modules simulated.
    pub pms: u32,
}

impl RunResult {
    /// Mean round-trip latency in cycles — the paper's primary measure.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean
    }
}

/// A ready-to-run simulation: network + workload + measurement plan.
///
/// # Example
///
/// ```
/// use ringmesh::{NetworkSpec, SimParams, System, SystemConfig};
/// use ringmesh_net::CacheLineSize;
///
/// let cfg = SystemConfig::new(NetworkSpec::mesh(2), CacheLineSize::B32)
///     .with_sim(SimParams::quick());
/// let result = System::new(cfg)?.run()?;
/// assert!(result.mean_latency() > 0.0);
/// # Ok::<(), ringmesh::RunError>(())
/// ```
pub struct System {
    cfg: SystemConfig,
    net: Box<dyn Interconnect>,
    workload: Mmrp,
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("network", &self.cfg.network.label())
            .field("pms", &self.cfg.network.num_pms())
            .finish()
    }
}

impl System {
    /// Builds the network and workload described by `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidConfig`] for inconsistent
    /// configurations.
    pub fn new(cfg: SystemConfig) -> Result<System, RunError> {
        let (net, placement, format): (Box<dyn Interconnect>, Placement, PacketFormat) =
            match &cfg.network {
                NetworkSpec::Ring { spec, speedup } => {
                    let rc = RingConfig::new(cfg.cache_line).with_global_speedup(*speedup);
                    let net = RingNetwork::new(spec, rc);
                    (
                        Box::new(net),
                        Placement::Linear {
                            pms: spec.num_pms(),
                        },
                        PacketFormat::RING,
                    )
                }
                NetworkSpec::Mesh { side, buffers } => {
                    if *side == 0 {
                        return Err(RunError::InvalidConfig("mesh side must be positive".into()));
                    }
                    let mc = MeshConfig::new(cfg.cache_line).with_buffers(*buffers);
                    let net = MeshNetwork::new(MeshTopology::new(*side), mc);
                    (
                        Box::new(net),
                        Placement::Grid { side: *side },
                        PacketFormat::MESH,
                    )
                }
                NetworkSpec::SlottedRing { spec } => {
                    let rc = RingConfig::new(cfg.cache_line);
                    let net = SlottedRingNetwork::new(spec, rc);
                    (
                        Box::new(net),
                        Placement::Linear {
                            pms: spec.num_pms(),
                        },
                        PacketFormat::RING,
                    )
                }
            };
        let sizer = PacketSizer {
            format,
            cache_line: cfg.cache_line,
        };
        let workload = Mmrp::new(placement, cfg.workload, cfg.memory, sizer, cfg.seed);
        Ok(System { cfg, net, workload })
    }

    /// Builds a system with an explicitly-tuned ring network (e.g. a
    /// finite IRI queue capacity for flow-control ablations). The
    /// `cfg.network` must be a `Ring` variant supplying the topology;
    /// the cache line of `ring_cfg` overrides `cfg.cache_line`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::InvalidConfig`] if `cfg.network` is not a
    /// ring.
    pub fn with_ring_config(cfg: SystemConfig, ring_cfg: RingConfig) -> Result<System, RunError> {
        let NetworkSpec::Ring { spec, .. } = &cfg.network else {
            return Err(RunError::InvalidConfig(
                "with_ring_config requires a ring network spec".into(),
            ));
        };
        let net = RingNetwork::new(spec, ring_cfg.clone());
        let sizer = PacketSizer {
            format: ring_cfg.format,
            cache_line: ring_cfg.cache_line,
        };
        let workload = Mmrp::new(
            Placement::Linear {
                pms: spec.num_pms(),
            },
            cfg.workload,
            cfg.memory,
            sizer,
            cfg.seed,
        );
        Ok(System {
            cfg,
            net: Box::new(net),
            workload,
        })
    }

    /// Runs the full batch-means measurement and reports the results.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Stall`] if the network deadlocks.
    pub fn run(mut self) -> Result<RunResult, RunError> {
        self.run_mut()
    }

    /// Runs like [`run`](System::run) with a recording tracer installed
    /// in the network, and returns the finalized trace alongside the
    /// results.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Stall`] if the network deadlocks.
    pub fn run_traced(mut self, tcfg: TraceConfig) -> Result<(RunResult, TraceReport), RunError> {
        self.net.set_tracer(Tracer::recording(tcfg));
        let result = self.run_mut()?;
        let report = self
            .net
            .take_tracer()
            .and_then(Tracer::finish)
            .expect("recording tracer was installed");
        Ok((result, report))
    }

    fn run_mut(&mut self) -> Result<RunResult, RunError> {
        let sim = self.cfg.sim;
        let mut latency = BatchMeans::new(sim.warmup, sim.batch_cycles, sim.batches);
        let mut histogram = Histogram::new();
        let mut delivered: Vec<(NodeId, Packet)> = Vec::new();
        let mut samples: Vec<(u64, f64)> = Vec::new();
        let net = self.net.as_mut();
        while !latency.is_complete(net.cycle()) {
            let now = net.cycle();
            if now == sim.warmup {
                net.reset_counters();
            }
            samples.clear();
            self.workload.pre_cycle(net, now, &mut samples);
            delivered.clear();
            net.step(&mut delivered)?;
            // Deliveries happen during cycle `now`; timestamp them so.
            self.workload.post_cycle(net, &delivered, now, &mut samples);
            for &(t, v) in &samples {
                latency.record(t, v);
                if t >= sim.warmup {
                    histogram.record(v);
                }
            }
        }
        Ok(RunResult {
            latency: latency.summary(),
            percentiles: histogram.p50_p95_p99(),
            throughput: latency.rate_per_cycle(),
            utilization: self.net.utilization(),
            workload: self.workload.stats(),
            pms: self.cfg.network.num_pms(),
        })
    }
}

/// Builds and runs `cfg` in one call.
///
/// # Errors
///
/// Propagates [`System::new`] and [`System::run`] errors.
pub fn run_config(cfg: SystemConfig) -> Result<RunResult, RunError> {
    System::new(cfg)?.run()
}

/// Runs a pre-built network under `cfg`'s workload and measurement
/// plan (for ablations that tune network internals beyond what
/// [`NetworkSpec`] exposes). The placement and packet format are
/// derived from `cfg.network`, which must describe the same network
/// shape as `net`.
pub(crate) fn run_prebuilt(
    net: Box<dyn Interconnect>,
    cfg: SystemConfig,
) -> Result<RunResult, RunError> {
    let (placement, format) = match &cfg.network {
        NetworkSpec::Ring { spec, .. } | NetworkSpec::SlottedRing { spec } => (
            Placement::Linear {
                pms: spec.num_pms(),
            },
            PacketFormat::RING,
        ),
        NetworkSpec::Mesh { side, .. } => (Placement::Grid { side: *side }, PacketFormat::MESH),
    };
    if net.num_pms() != cfg.network.num_pms() as usize {
        return Err(RunError::InvalidConfig(
            "prebuilt network size does not match the config".into(),
        ));
    }
    let sizer = PacketSizer {
        format,
        cache_line: cfg.cache_line,
    };
    let workload = Mmrp::new(placement, cfg.workload, cfg.memory, sizer, cfg.seed);
    System { cfg, net, workload }.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimParams;
    use ringmesh_net::CacheLineSize;
    use ringmesh_workload::WorkloadParams;

    fn quick(network: NetworkSpec, cl: CacheLineSize) -> SystemConfig {
        SystemConfig::new(network, cl).with_sim(SimParams::quick())
    }

    #[test]
    fn small_ring_runs_and_measures() {
        let cfg = quick(NetworkSpec::ring("4".parse().unwrap()), CacheLineSize::B32);
        let r = run_config(cfg).unwrap();
        assert!(r.latency.n >= 4, "batches populated: {:?}", r.latency);
        // Zero-load-ish latency on a 4-ring: a couple of hops + memory.
        assert!(
            r.mean_latency() > 10.0 && r.mean_latency() < 100.0,
            "{}",
            r.mean_latency()
        );
        assert!(r.throughput > 0.0);
        assert!(r.workload.retired > 0);
    }

    #[test]
    fn small_mesh_runs_and_measures() {
        let cfg = quick(NetworkSpec::mesh(2), CacheLineSize::B32);
        let r = run_config(cfg).unwrap();
        assert!(
            r.mean_latency() > 10.0 && r.mean_latency() < 200.0,
            "{}",
            r.mean_latency()
        );
        assert!(r.utilization.overall > 0.0);
    }

    #[test]
    fn equal_seeds_replay_exactly() {
        let cfg = quick(
            NetworkSpec::ring("2:3".parse().unwrap()),
            CacheLineSize::B64,
        );
        let a = run_config(cfg.clone()).unwrap();
        let b = run_config(cfg).unwrap();
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.workload, b.workload);
    }

    #[test]
    fn different_seeds_differ() {
        let base = quick(
            NetworkSpec::ring("2:3".parse().unwrap()),
            CacheLineSize::B64,
        );
        let a = run_config(base.clone().with_seed(1)).unwrap();
        let b = run_config(base.with_seed(2)).unwrap();
        assert_ne!(a.latency.mean, b.latency.mean);
    }

    #[test]
    fn issued_eventually_retire() {
        let cfg = quick(NetworkSpec::mesh(3), CacheLineSize::B16);
        let r = run_config(cfg).unwrap();
        // Closed-loop with T=4: in-flight at the end is at most 4 per PM.
        assert!(r.workload.issued - r.workload.retired <= 4 * 9);
    }

    #[test]
    fn locality_reduces_latency_on_rings() {
        let mk = |r: f64| {
            quick(
                NetworkSpec::ring("3:3:6".parse().unwrap()),
                CacheLineSize::B64,
            )
            .with_workload(
                WorkloadParams::paper_baseline()
                    .with_region(r)
                    .with_outstanding(2),
            )
        };
        let no_loc = run_config(mk(1.0)).unwrap();
        let loc = run_config(mk(0.1)).unwrap();
        assert!(
            loc.mean_latency() < no_loc.mean_latency(),
            "R=0.1 {} !< R=1.0 {}",
            loc.mean_latency(),
            no_loc.mean_latency()
        );
    }

    #[test]
    fn invalid_mesh_rejected() {
        let cfg = quick(
            NetworkSpec::Mesh {
                side: 0,
                buffers: ringmesh_net::BufferRegime::FourFlit,
            },
            CacheLineSize::B32,
        );
        assert!(matches!(System::new(cfg), Err(RunError::InvalidConfig(_))));
    }
}
