//! Typed process exit statuses for the `ringmesh` CLI.
//!
//! Every subcommand maps its outcome through [`ExitStatus`] instead of
//! scattering magic numbers: scripts and CI jobs can tell "bad
//! arguments" from "the simulation deadlocked" from "the simulator
//! corrupted its own accounting" without parsing stderr. The numeric
//! values are part of the CLI's public contract and must not change.

use std::process::ExitCode;

use crate::system::RunError;

/// Outcome of a `ringmesh` invocation, in exit-code order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitStatus {
    /// The run completed and results were reported.
    Success,
    /// Bad arguments or an invalid configuration.
    Usage,
    /// The simulation stalled (watchdog-detected deadlock).
    Stall,
    /// The packet-conservation audit failed — the simulator itself is
    /// buggy and any numbers it printed are suspect.
    ConservationViolation,
    /// A file or socket operation failed.
    Io,
    /// A malformed request or response on the serve protocol.
    Protocol,
    /// The process was asked to stop (SIGTERM/SIGINT) and shut down
    /// gracefully: in-flight work checkpointed, journal and cache
    /// flushed. Distinct from [`ExitStatus::Success`] so supervisors can
    /// tell "finished" from "wound down on request".
    Interrupted,
    /// Two workers produced byte-different results for one content key —
    /// the determinism contract the entire cache and recovery design
    /// rests on is broken (a corrupted worker or a mixed build that
    /// slipped past the code-hash handshake). Nothing from the affected
    /// fleet should be trusted until the cause is found.
    DeterminismViolation,
}

impl ExitStatus {
    /// The numeric exit code (stable CLI contract).
    pub fn code(self) -> u8 {
        match self {
            ExitStatus::Success => 0,
            ExitStatus::Usage => 1,
            ExitStatus::Stall => 2,
            ExitStatus::ConservationViolation => 3,
            ExitStatus::Io => 4,
            ExitStatus::Protocol => 5,
            ExitStatus::Interrupted => 6,
            ExitStatus::DeterminismViolation => 7,
        }
    }
}

impl From<ExitStatus> for ExitCode {
    fn from(status: ExitStatus) -> ExitCode {
        ExitCode::from(status.code())
    }
}

impl From<&RunError> for ExitStatus {
    fn from(e: &RunError) -> ExitStatus {
        match e {
            RunError::Stall(_) => ExitStatus::Stall,
            RunError::InvalidConfig(_) => ExitStatus::Usage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_the_documented_contract() {
        assert_eq!(ExitStatus::Success.code(), 0);
        assert_eq!(ExitStatus::Usage.code(), 1);
        assert_eq!(ExitStatus::Stall.code(), 2);
        assert_eq!(ExitStatus::ConservationViolation.code(), 3);
        assert_eq!(ExitStatus::Io.code(), 4);
        assert_eq!(ExitStatus::Protocol.code(), 5);
        assert_eq!(ExitStatus::Interrupted.code(), 6);
        assert_eq!(ExitStatus::DeterminismViolation.code(), 7);
    }

    #[test]
    fn run_errors_map_to_their_codes() {
        let stall: RunError = ringmesh_engine::StallError {
            detected_at: 10,
            last_progress: 0,
            in_flight: 3,
        }
        .into();
        assert_eq!(ExitStatus::from(&stall), ExitStatus::Stall);
        let usage = RunError::InvalidConfig("x".into());
        assert_eq!(ExitStatus::from(&usage), ExitStatus::Usage);
    }
}
