//! `ringmesh` — a flit-level simulation framework comparing
//! hierarchical ring and 2-D mesh multiprocessor interconnects.
//!
//! This crate is a from-scratch reproduction of the system behind
//! *"A Performance Comparison of Hierarchical Ring- and Mesh-connected
//! Multiprocessor Networks"* (G. Ravindran and M. Stumm, HPCA 1997).
//! It ties together:
//!
//! * [`ringmesh_ring`] — hierarchical uni-directional rings (NICs,
//!   inter-ring interfaces, wormhole switching, double-speed global
//!   rings);
//! * [`ringmesh_mesh`] — square bi-directional wormhole meshes (e-cube
//!   routing, 5×5 crossbar routers, 1/4/cl-flit buffers);
//! * [`ringmesh_workload`] — the M-MRP synthetic workload (locality
//!   `R`, miss rate `C`, outstanding limit `T`);
//! * [`ringmesh_stats`] — batch-means output analysis.
//!
//! # Quick start
//!
//! ```
//! use ringmesh::{NetworkSpec, SimParams, SystemConfig, run_config};
//! use ringmesh_net::CacheLineSize;
//!
//! // Simulate the paper's optimal 24-processor ring topology…
//! let ring = SystemConfig::new(
//!     NetworkSpec::ring("2:3:4".parse().map_err(ringmesh::RunError::InvalidConfig)?),
//!     CacheLineSize::B128,
//! )
//! .with_sim(SimParams::quick());
//! // …and a 25-processor mesh with the default 4-flit buffers.
//! let mesh = SystemConfig::new(NetworkSpec::mesh(5), CacheLineSize::B128)
//!     .with_sim(SimParams::quick());
//!
//! let ring_result = run_config(ring)?;
//! let mesh_result = run_config(mesh)?;
//! println!(
//!     "ring: {:.0} cycles, mesh: {:.0} cycles",
//!     ring_result.mean_latency(),
//!     mesh_result.mean_latency()
//! );
//! # Ok::<(), ringmesh::RunError>(())
//! ```
//!
//! The [`figures`] module regenerates every table and figure of the
//! paper's evaluation; [`topologies`] encodes its Table 2 and
//! generalizes the topology-selection policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod analytic;
pub mod benchrun;
mod config;
mod exit;
pub mod figures;
mod sweep;
mod system;
pub mod topologies;

pub use config::{NetworkSpec, SimParams, SystemConfig};
pub use exit::ExitStatus;
pub use ringmesh_engine::{
    configured_kernel_threads, effective_kernel_threads, set_kernel_threads, AdmissionGate,
    KernelPool, StopFlag, WorkerPool,
};
pub use ringmesh_faults::{ConservationError, DropCounts, FaultConfig, FaultReport};
pub use ringmesh_snap::SnapError;
pub use ringmesh_trace::{TraceConfig, TraceReport};
pub use ringmesh_workload::{RetryPolicy, RetryStats};
pub use sweep::{
    run_points, run_points_with, run_series, run_series_with, series_of, set_sweep_threads, Scale,
};
pub use system::{run_config, FaultPlan, FaultRunReport, RunError, RunResult, RunState, System};
