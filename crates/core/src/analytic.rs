//! Closed-form models of both networks: zero-load latency and
//! bisection-bound throughput.
//!
//! The one prior comparison of these network families the paper cites
//! (Hamacher & Jiang, ICPP 1994 — the paper's reference \[15\]) was purely
//! analytical. This module provides the analytical counterpart to our
//! simulators: exact zero-load round-trip latencies (averaged over an
//! access region) and upper bounds on sustainable throughput from link
//! and bisection capacities. The test suite uses them two ways:
//!
//! * *validation* — at very light load the simulators must match the
//!   zero-load model exactly (they do; see `tests/analytic_check.rs`);
//! * *interpretation* — saturated throughput is compared against the
//!   bisection bound to quantify how much of the theoretical capacity
//!   each switching discipline realises.

use ringmesh_mesh::MeshTopology;
use ringmesh_net::{CacheLineSize, NodeId, PacketFormat, PacketKind};
use ringmesh_ring::{RingSpec, RingTopology};
use ringmesh_workload::{access_region, Placement, WorkloadParams};

/// Exact zero-load one-way delivery time of our wormhole ring model,
/// from injection to last-flit delivery:
///
/// * `hops` link traversals plus one extra cycle per IRI crossing (the
///   crossbar's second store-and-forward stage);
/// * `(flits − 1)·(1 + crossings)` serialization — the whole worm must
///   re-accumulate before *entering* each ring (the self-contained
///   entry rule that makes the hierarchy deadlock-free), so the
///   pipeline refill cost is paid once per ring entered;
/// * minus one overlap cycle when a multi-flit worm crosses rings (the
///   final accumulation overlaps the first ejection).
fn ring_one_way(topo: &RingTopology, s: NodeId, t: NodeId, flits: u32) -> f64 {
    let hops = topo.hops(s, t);
    let crossings = topo.iri_crossings(s, t);
    let overlap = u32::from(crossings > 0 && flits > 1);
    f64::from(hops + crossings + (flits - 1) * (1 + crossings) - overlap)
}

/// Analytic zero-load round-trip latency for a ring system: averaged
/// over every (source, target) pair of the M-MRP access regions,
/// weighted by the read fraction for packet sizes; the per-direction
/// pipeline is `ring_one_way`'s exact model. Local accesses cost only
/// the memory latency.
pub fn ring_zero_load_latency(
    spec: &RingSpec,
    cl: CacheLineSize,
    workload: &WorkloadParams,
    mem_latency: u32,
) -> f64 {
    let topo = RingTopology::new(spec);
    let p = spec.num_pms();
    let fmt = PacketFormat::RING;
    let fr = workload.read_fraction;
    let mut total = 0.0;
    let mut count = 0.0;
    for src in 0..p {
        let s = NodeId::new(src);
        for t in access_region(Placement::Linear { pms: p }, s, workload.region) {
            count += 1.0;
            if t == s {
                total += f64::from(mem_latency);
                continue;
            }
            let read = ring_one_way(&topo, s, t, fmt.flits(PacketKind::ReadReq, cl))
                + ring_one_way(&topo, t, s, fmt.flits(PacketKind::ReadResp, cl));
            let write = ring_one_way(&topo, s, t, fmt.flits(PacketKind::WriteReq, cl))
                + ring_one_way(&topo, t, s, fmt.flits(PacketKind::WriteResp, cl));
            total += fr * read + (1.0 - fr) * write + f64::from(mem_latency);
        }
    }
    total / count
}

/// Analytic zero-load round-trip latency for a mesh system, mirroring
/// [`ring_zero_load_latency`]. The exact per-direction pipeline of our
/// mesh model is `hops + flits` cycles (one cycle through the local
/// injection buffer, one per link, one ejection, `flits − 1`
/// serialization, minus one stamp-convention overlap).
pub fn mesh_zero_load_latency(
    side: u32,
    cl: CacheLineSize,
    workload: &WorkloadParams,
    mem_latency: u32,
) -> f64 {
    let topo = MeshTopology::new(side);
    let p = side * side;
    let fmt = PacketFormat::MESH;
    let fr = workload.read_fraction;
    let flits = |kind: PacketKind| f64::from(fmt.flits(kind, cl));
    let ser = fr * (flits(PacketKind::ReadReq) + flits(PacketKind::ReadResp))
        + (1.0 - fr) * (flits(PacketKind::WriteReq) + flits(PacketKind::WriteResp));
    let mut total = 0.0;
    let mut count = 0.0;
    for src in 0..p {
        let s = NodeId::new(src);
        for t in access_region(Placement::Grid { side }, s, workload.region) {
            count += 1.0;
            if t == s {
                total += f64::from(mem_latency);
                continue;
            }
            let hops = 2.0 * f64::from(topo.manhattan(s, t));
            total += hops + ser + f64::from(mem_latency);
        }
    }
    total / count
}

/// Upper bound on system throughput (transactions per cycle) from the
/// *bisection* capacity of a hierarchical ring: traffic crossing the
/// global ring cannot exceed its aggregate link bandwidth.
///
/// The bound is `capacity / (expected bisection flit-hops per
/// transaction)`, where capacity is `stations × speedup` flits/cycle
/// and the expectation runs over the access regions: a transaction
/// whose target lies under a different global-ring subtree carries its
/// request and response across the global ring.
pub fn ring_bisection_bound(
    spec: &RingSpec,
    cl: CacheLineSize,
    workload: &WorkloadParams,
    global_speedup: u32,
) -> f64 {
    let topo = RingTopology::new(spec);
    if topo.levels() == 1 {
        // A single ring: use total ring capacity over expected flit-hops.
        return single_ring_bound(spec.num_pms(), cl, workload);
    }
    let p = spec.num_pms();
    let fmt = PacketFormat::RING;
    let fr = workload.read_fraction;
    let stations = topo.ring(0).members.len() as f64;
    // Expected global-ring flit-hops per transaction: the request
    // traverses the global ring on the way out, the response on the
    // way back (each zero when source and target share a top-level
    // subtree).
    let req = fr * f64::from(fmt.flits(PacketKind::ReadReq, cl))
        + (1.0 - fr) * f64::from(fmt.flits(PacketKind::WriteReq, cl));
    let resp = fr * f64::from(fmt.flits(PacketKind::ReadResp, cl))
        + (1.0 - fr) * f64::from(fmt.flits(PacketKind::WriteResp, cl));
    let mut flit_hops = 0.0;
    let mut count = 0.0;
    for src in 0..p {
        let s = NodeId::new(src);
        for t in access_region(Placement::Linear { pms: p }, s, workload.region) {
            count += 1.0;
            if t == s {
                continue;
            }
            flit_hops += req * f64::from(global_hops(&topo, s, t))
                + resp * f64::from(global_hops(&topo, t, s));
        }
    }
    flit_hops /= count;
    let capacity = stations * f64::from(global_speedup);
    if flit_hops < f64::EPSILON {
        f64::INFINITY
    } else {
        capacity / flit_hops
    }
}

/// Number of global-ring (depth-0) link traversals on the path from
/// `src` to `dst`.
fn global_hops(topo: &RingTopology, src: NodeId, dst: NodeId) -> u32 {
    if src == dst {
        return 0;
    }
    // Walk the route, counting hops whose carrying ring is the root.
    let mut pos = (topo.nic_of(src), 0u8);
    let mut hops = 0u32;
    let mut steps = 0u32;
    loop {
        let (st, side) = pos;
        use ringmesh_ring::RingAction::*;
        let (action, ring) = if steps == 0 {
            (Forward, topo.ring_of(st, side)) // leave the source NIC
        } else {
            (topo.action(st, side, dst), topo.ring_of(st, side))
        };
        match action {
            Eject => return hops,
            Forward => {
                if ring == 0 {
                    hops += 1;
                }
                pos = topo.next_of(st, side);
            }
            Up => {
                if topo.ring_of(st, 1) == 0 {
                    hops += 1;
                }
                pos = topo.next_of(st, 1);
            }
            Down => {
                if topo.ring_of(st, 0) == 0 {
                    hops += 1;
                }
                pos = topo.next_of(st, 0);
            }
        }
        steps += 1;
        assert!(steps < 10_000, "routing walk did not terminate");
    }
}

fn single_ring_bound(p: u32, cl: CacheLineSize, workload: &WorkloadParams) -> f64 {
    let fmt = PacketFormat::RING;
    let fr = workload.read_fraction;
    // Uniform traffic on a P-station uni-directional ring: request and
    // response hops sum to exactly P for every remote pair.
    let txn_flits = fr
        * f64::from(fmt.flits(PacketKind::ReadReq, cl) + fmt.flits(PacketKind::ReadResp, cl))
        + (1.0 - fr)
            * f64::from(fmt.flits(PacketKind::WriteReq, cl) + fmt.flits(PacketKind::WriteResp, cl));
    let remote_fraction = f64::from(p - 1) / f64::from(p);
    // flit-hops per txn ≈ txn_flits × P/2 per direction pair; capacity P.
    let flit_hops = remote_fraction * txn_flits * f64::from(p) / 2.0;
    f64::from(p) / flit_hops
}

/// Upper bound on mesh system throughput from its bisection: for an
/// even `side`, `2·side` directed links cross the middle; uniform
/// traffic sends half of all flits across. (For odd sides the bound
/// uses the nearest cut.)
pub fn mesh_bisection_bound(side: u32, cl: CacheLineSize, workload: &WorkloadParams) -> f64 {
    let p = f64::from(side * side);
    let fmt = PacketFormat::MESH;
    let fr = workload.read_fraction;
    let txn_flits = fr
        * f64::from(fmt.flits(PacketKind::ReadReq, cl) + fmt.flits(PacketKind::ReadResp, cl))
        + (1.0 - fr)
            * f64::from(fmt.flits(PacketKind::WriteReq, cl) + fmt.flits(PacketKind::WriteResp, cl));
    let _ = p;
    let cut_links = 2.0 * f64::from(side);
    // Fraction of transactions straddling the cut: 1/2 under uniform
    // traffic, shrinking roughly with R under locality (the region
    // covers R of the machine, at most half of it across the cut).
    // This keeps the result an upper bound rather than an expectation.
    let crossing_fraction = (0.5 * workload.region).max(f64::EPSILON);
    cut_links / (txn_flits * crossing_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(r: f64) -> WorkloadParams {
        WorkloadParams::paper_baseline().with_region(r)
    }

    #[test]
    fn ring_zero_load_scales_with_size() {
        let small = ring_zero_load_latency(&RingSpec::single(4), CacheLineSize::B32, &wl(1.0), 10);
        let large = ring_zero_load_latency(&RingSpec::single(12), CacheLineSize::B32, &wl(1.0), 10);
        assert!(large > small);
        // A 4-ring with 32B lines: remote round trip = 4 hops (request
        // plus response directions sum to the ring size) + 2 response
        // serialization + 10 memory = 16; local = 10. Average over the
        // region {self + 3 remote} = (10 + 3*16)/4 = 14.5.
        assert!((small - 14.5).abs() < 1e-9, "{small}");
    }

    #[test]
    fn hierarchy_crossings_increase_zero_load() {
        let flat = ring_zero_load_latency(&RingSpec::single(12), CacheLineSize::B32, &wl(1.0), 10);
        let hier =
            ring_zero_load_latency(&"2:6".parse().unwrap(), CacheLineSize::B32, &wl(1.0), 10);
        // Same PM count; the hierarchy pays crossing penalties at zero
        // load (its win is under load).
        assert!(hier > 0.0 && flat > 0.0);
    }

    #[test]
    fn mesh_zero_load_formula_small_case() {
        // 2x2 mesh, 32B lines, uniform: remote pairs at distance 1 or 2.
        let m = mesh_zero_load_latency(2, CacheLineSize::B32, &wl(1.0), 10);
        assert!(m > 10.0 && m < 60.0, "{m}");
    }

    #[test]
    fn ring_bisection_bound_matches_hand_calc() {
        // Single 12-ring, 16B lines: txn_flits = 0.7*(1+2)+0.3*(2+1) = 3,
        // remote fraction 11/12, flit-hops = 11/12*3*6 = 16.5, bound =
        // 12/16.5 ≈ 0.727 txns/cycle.
        let b = ring_bisection_bound(&RingSpec::single(12), CacheLineSize::B16, &wl(1.0), 1);
        assert!((b - 12.0 / 16.5).abs() < 1e-9, "{b}");
    }

    #[test]
    fn hierarchical_bisection_bound_is_finite_and_scales_with_speedup() {
        let spec: RingSpec = "3:3:6".parse().unwrap();
        let b1 = ring_bisection_bound(&spec, CacheLineSize::B64, &wl(1.0), 1);
        let b2 = ring_bisection_bound(&spec, CacheLineSize::B64, &wl(1.0), 2);
        assert!(b1.is_finite() && b1 > 0.0);
        assert!((b2 / b1 - 2.0).abs() < 1e-9, "speedup doubles the bound");
    }

    #[test]
    fn locality_raises_ring_bisection_bound() {
        let spec: RingSpec = "3:3:6".parse().unwrap();
        let uniform = ring_bisection_bound(&spec, CacheLineSize::B64, &wl(1.0), 1);
        let local = ring_bisection_bound(&spec, CacheLineSize::B64, &wl(0.1), 1);
        assert!(local > 2.0 * uniform, "local {local} vs uniform {uniform}");
    }

    #[test]
    fn mesh_bound_grows_with_side() {
        let small = mesh_bisection_bound(4, CacheLineSize::B64, &wl(1.0));
        let large = mesh_bisection_bound(8, CacheLineSize::B64, &wl(1.0));
        assert!(large > small);
    }

    #[test]
    fn global_hops_zero_within_subtree() {
        let topo = RingTopology::new(&"2:3:4".parse().unwrap());
        // PMs 0 and 5 share the first top-level subtree (0..12).
        assert_eq!(global_hops(&topo, NodeId::new(0), NodeId::new(5)), 0);
        assert!(global_hops(&topo, NodeId::new(0), NodeId::new(15)) > 0);
    }
}
