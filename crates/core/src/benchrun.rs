//! The tracked benchmark baseline behind `ringmesh bench`.
//!
//! Two measurement families, both cheap enough to run on every CI
//! push as an informational artifact:
//!
//! * **Kernel throughput** — one simulation per network model
//!   (wormhole ring, double-speed ring, slotted ring, mesh), timed
//!   wall-clock and reported as simulated cycles per second. These
//!   isolate the cycle kernel itself: routing tables, the flit pool,
//!   and the active-station/router worklists all sit on this path.
//! * **Sweep scaling** — a figure sweep timed twice through the
//!   public [`crate::run_series`] machinery, once pinned to one
//!   worker thread and once at the requested thread count, with a
//!   bit-exact comparison of the two outputs. The speedup column is
//!   the parallel-executor headline number; `identical: true` is the
//!   determinism guarantee.
//!
//! Reports render as text (for humans) and as hand-rolled JSON
//! (`BENCH_RUN.json`, for machines); the JSON schema is versioned so
//! downstream tooling can detect shape changes.

use std::fmt::Write as _;
use std::time::Instant;

use ringmesh_net::CacheLineSize;

use crate::figures::{self, FigureData};
use crate::sweep::{set_sweep_threads, Scale};
use crate::system::run_config;
use crate::{NetworkSpec, SystemConfig, WorkerPool};

/// JSON schema tag written into every report. Version 2 added latency
/// percentiles to each kernel entry.
pub const SCHEMA: &str = "ringmesh-bench/2";

/// What to measure and where to write it.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Simulation scale for every measurement.
    pub scale: Scale,
    /// Worker threads for the parallel leg of the sweep measurements.
    pub threads: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            scale: Scale::from_env(),
            threads: WorkerPool::from_env().threads(),
        }
    }
}

/// One kernel-throughput measurement.
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// Network label, e.g. `ring 3:3:6`.
    pub name: String,
    /// Simulated cycles executed (the configured horizon).
    pub cycles: u64,
    /// Wall-clock seconds for the run.
    pub wall_s: f64,
    /// `cycles / wall_s`.
    pub cycles_per_sec: f64,
    /// Simulated round-trip latency percentiles `(p50, p95, p99)` of
    /// the measured run, in network cycles — the tail-latency baseline
    /// tracked alongside throughput.
    pub percentiles: Option<(f64, f64, f64)>,
}

/// One serial-vs-parallel sweep measurement.
#[derive(Debug, Clone)]
pub struct FigureBench {
    /// Figure name, e.g. `fig06`.
    pub name: String,
    /// Wall-clock seconds pinned to one worker thread.
    pub serial_s: f64,
    /// Wall-clock seconds at [`BenchReport::threads`] workers.
    pub parallel_s: f64,
    /// `serial_s / parallel_s`.
    pub speedup: f64,
    /// Whether the two runs produced bit-identical figure data.
    pub identical: bool,
}

/// A complete benchmark baseline.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `"quick"` or `"full"`.
    pub scale: &'static str,
    /// Worker threads used for the parallel sweep legs.
    pub threads: usize,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// read speedups relative to this, not to `threads`.
    pub host_parallelism: usize,
    /// Kernel-throughput measurements.
    pub kernels: Vec<KernelBench>,
    /// Serial-vs-parallel sweep measurements.
    pub figures: Vec<FigureBench>,
}

/// Runs the full benchmark suite.
pub fn run(opts: &BenchOptions) -> BenchReport {
    let threads = opts.threads.max(1);
    let mut report = BenchReport {
        scale: if opts.scale.quick { "quick" } else { "full" },
        threads,
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        kernels: Vec::new(),
        figures: Vec::new(),
    };
    for (name, cfg) in kernel_cases(opts.scale) {
        eprintln!("bench: kernel {name} ...");
        if let Some(k) = kernel_bench(name, cfg) {
            report.kernels.push(k);
        }
    }
    type FigureFn = fn(Scale) -> FigureData;
    let figure_cases: [(&str, FigureFn); 2] =
        [("fig06", figures::fig06), ("fig16", figures::fig16)];
    for (name, f) in figure_cases {
        eprintln!("bench: sweep {name} serial vs {threads} threads ...");
        report
            .figures
            .push(figure_bench(name, f, opts.scale, threads));
    }
    report
}

/// The kernel measurement matrix: one configuration per network model,
/// chosen so every optimized path is on the clock — the wormhole ring
/// (station worklist + route walk), the double-speed global ring (the
/// two-tick sub-cycle), the slotted ring (service order, route table
/// and flit pool), and the mesh (link tables + router worklist).
fn kernel_cases(scale: Scale) -> Vec<(String, SystemConfig)> {
    let spec = || "3:3:6".parse().expect("valid ring spec");
    let sized = |cfg: SystemConfig| cfg.with_sim(scale.sim);
    vec![
        (
            "ring 3:3:6".into(),
            sized(SystemConfig::new(
                NetworkSpec::ring(spec()),
                CacheLineSize::B64,
            )),
        ),
        (
            "ring 3:3:6 2x-global".into(),
            sized(SystemConfig::new(
                NetworkSpec::Ring {
                    spec: spec(),
                    speedup: 2,
                },
                CacheLineSize::B64,
            )),
        ),
        (
            "slotted-ring 3:3:6".into(),
            sized(SystemConfig::new(
                NetworkSpec::SlottedRing { spec: spec() },
                CacheLineSize::B64,
            )),
        ),
        (
            "mesh 7x7".into(),
            sized(SystemConfig::new(NetworkSpec::mesh(7), CacheLineSize::B64)),
        ),
    ]
}

fn kernel_bench(name: String, cfg: SystemConfig) -> Option<KernelBench> {
    let cycles = cfg.sim.horizon();
    let start = Instant::now();
    let result = match run_config(cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("warning: bench kernel {name} failed: {e}");
            return None;
        }
    };
    let wall_s = start.elapsed().as_secs_f64();
    Some(KernelBench {
        name,
        cycles,
        cycles_per_sec: cycles as f64 / wall_s.max(1e-9),
        wall_s,
        percentiles: result.percentiles,
    })
}

/// Times `figure` once pinned to one sweep worker and once at
/// `threads`, restoring the process-default thread setting afterwards,
/// and compares the outputs bit-for-bit.
fn figure_bench(
    name: &str,
    figure: fn(Scale) -> FigureData,
    scale: Scale,
    threads: usize,
) -> FigureBench {
    set_sweep_threads(1);
    let start = Instant::now();
    let serial = figure(scale);
    let serial_s = start.elapsed().as_secs_f64();
    set_sweep_threads(threads);
    let start = Instant::now();
    let parallel = figure(scale);
    let parallel_s = start.elapsed().as_secs_f64();
    set_sweep_threads(0);
    FigureBench {
        name: name.to_string(),
        serial_s,
        parallel_s,
        speedup: serial_s / parallel_s.max(1e-9),
        identical: fingerprint(&serial) == fingerprint(&parallel),
    }
}

/// A bit-exact textual fingerprint of figure data: every label plus
/// the raw IEEE-754 bits of every point, so "identical" means what a
/// byte-for-byte artifact diff would mean.
fn fingerprint(data: &FigureData) -> String {
    let mut s = String::new();
    for (title, group) in data {
        s.push_str(title);
        s.push('\n');
        for series in group {
            s.push_str(&series.label);
            for &(x, y) in &series.points {
                let _ = write!(s, "|{:016x}:{:016x}", x.to_bits(), y.to_bits());
            }
            s.push('\n');
        }
    }
    s
}

impl BenchReport {
    /// Human-readable summary.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "benchmark baseline — scale {}, {} threads ({} host cores)",
            self.scale, self.threads, self.host_parallelism
        );
        let _ = writeln!(s, "\nkernel throughput:");
        for k in &self.kernels {
            let tail = match k.percentiles {
                Some((p50, p95, p99)) => {
                    format!("  p50/p95/p99 {p50:.0}/{p95:.0}/{p99:.0} cyc")
                }
                None => String::new(),
            };
            let _ = writeln!(
                s,
                "  {:22} {:>9} cycles in {:>7.3}s = {:>11.0} cycles/s{tail}",
                k.name, k.cycles, k.wall_s, k.cycles_per_sec
            );
        }
        let _ = writeln!(s, "\nsweep scaling (serial vs {} threads):", self.threads);
        for f in &self.figures {
            let _ = writeln!(
                s,
                "  {:8} serial {:>7.3}s  parallel {:>7.3}s  speedup {:>5.2}x  identical: {}",
                f.name, f.serial_s, f.parallel_s, f.speedup, f.identical
            );
        }
        s
    }

    /// The versioned `BENCH_RUN.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(s, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"host_parallelism\": {},", self.host_parallelism);
        s.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let tail = match k.percentiles {
                Some((p50, p95, p99)) => {
                    format!(", \"p50\": {p50:.1}, \"p95\": {p95:.1}, \"p99\": {p99:.1}")
                }
                None => String::new(),
            };
            let _ = write!(
                s,
                "    {{\"name\": \"{}\", \"cycles\": {}, \"wall_s\": {:.6}, \"cycles_per_sec\": {:.1}{tail}}}",
                k.name, k.cycles, k.wall_s, k.cycles_per_sec
            );
            s.push_str(if i + 1 < self.kernels.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"figures\": [\n");
        for (i, f) in self.figures.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": \"{}\", \"serial_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup\": {:.3}, \"identical\": {}}}",
                f.name, f.serial_s, f.parallel_s, f.speedup, f.identical
            );
            s.push_str(if i + 1 < self.figures.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_bench_measures_one_run() {
        let scale = Scale::quick();
        let cfg = SystemConfig::new(NetworkSpec::ring("4".parse().unwrap()), CacheLineSize::B32)
            .with_sim(crate::SimParams {
                warmup: 200,
                batch_cycles: 200,
                batches: 2,
            });
        let k = kernel_bench("tiny ring".into(), cfg).expect("tiny run completes");
        assert_eq!(k.cycles, 600);
        assert!(k.wall_s > 0.0 && k.cycles_per_sec > 0.0);
        let _ = scale;
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = BenchReport {
            scale: "quick",
            threads: 4,
            host_parallelism: 8,
            kernels: vec![KernelBench {
                name: "ring 3:3:6".into(),
                cycles: 1000,
                wall_s: 0.5,
                cycles_per_sec: 2000.0,
                percentiles: Some((40.0, 90.0, 140.0)),
            }],
            figures: vec![FigureBench {
                name: "fig06".into(),
                serial_s: 1.0,
                parallel_s: 0.5,
                speedup: 2.0,
                identical: true,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ringmesh-bench/2\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"p99\": 140.0"));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(report.to_text().contains("fig06"));
    }
}
