//! The tracked benchmark baseline behind `ringmesh bench`.
//!
//! Two measurement families, both cheap enough to run on every CI
//! push as an informational artifact:
//!
//! * **Kernel throughput** — one simulation per network model
//!   (wormhole ring, double-speed ring, slotted ring, mesh), timed
//!   wall-clock and reported as simulated cycles per second. These
//!   isolate the cycle kernel itself: routing tables, the flit pool,
//!   and the active-station/router worklists all sit on this path.
//! * **Sweep scaling** — a figure sweep timed twice through the
//!   public [`crate::run_series`] machinery, once pinned to one
//!   worker thread and once at the requested thread count, with a
//!   bit-exact comparison of the two outputs. The speedup column is
//!   the parallel-executor headline number; `identical: true` is the
//!   determinism guarantee.
//!
//! Reports render as text (for humans) and as hand-rolled JSON
//! (`BENCH_RUN.json`, for machines); the JSON schema is versioned so
//! downstream tooling can detect shape changes.

use std::fmt::Write as _;
use std::time::Instant;

use ringmesh_net::CacheLineSize;

use crate::figures::{self, FigureData};
use crate::sweep::{set_sweep_threads, Scale};
use crate::system::System;
use crate::{NetworkSpec, SystemConfig, WorkerPool};

/// JSON schema tag written into every report. Version 2 added latency
/// percentiles to each kernel entry; version 3 added the per-kernel
/// thread matrix (`threads` array + `identical` flag) measuring the
/// intra-cycle parallel kernel at 1/2/4/host-max compute threads. On a
/// single-core host the matrix collapses to the single-thread leg and
/// the entry carries an extra `"thread_matrix": "skipped"` marker
/// (still schema 3: fields are only ever added, never reshaped).
pub const SCHEMA: &str = "ringmesh-bench/3";

/// What to measure and where to write it.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Simulation scale for every measurement.
    pub scale: Scale,
    /// Worker threads for the parallel leg of the sweep measurements.
    pub threads: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            scale: Scale::from_env(),
            threads: WorkerPool::from_env().threads(),
        }
    }
}

/// One leg of a kernel measurement at a specific intra-cycle thread
/// count.
#[derive(Debug, Clone)]
pub struct KernelThreadBench {
    /// Compute threads the kernel actually used (the network clamps —
    /// the serial ring models always report 1, the mesh clamps to its
    /// shard count).
    pub threads: usize,
    /// Wall-clock seconds for the run.
    pub wall_s: f64,
    /// `cycles / wall_s`.
    pub cycles_per_sec: f64,
}

/// One kernel-throughput measurement.
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// Network label, e.g. `ring 3:3:6`.
    pub name: String,
    /// Simulated cycles executed (the configured horizon).
    pub cycles: u64,
    /// Wall-clock seconds for the single-thread run (the regression
    /// baseline — independent of host core count).
    pub wall_s: f64,
    /// `cycles / wall_s` of the single-thread run.
    pub cycles_per_sec: f64,
    /// Whether every thread-count leg produced a bit-identical
    /// [`crate::RunResult`] fingerprint — the parallel-kernel
    /// determinism guarantee, checked on every bench run.
    pub identical: bool,
    /// Per-thread-count measurements, ascending, deduplicated on the
    /// effective thread count (serial models report a single leg).
    pub threads: Vec<KernelThreadBench>,
    /// The multi-thread legs were not run because the host reports a
    /// single core — timing them there would measure scheduler churn,
    /// not the kernel. Marked `"thread_matrix": "skipped"` in the JSON.
    pub threads_skipped: bool,
    /// Simulated round-trip latency percentiles `(p50, p95, p99)` of
    /// the measured run, in network cycles — the tail-latency baseline
    /// tracked alongside throughput.
    pub percentiles: Option<(f64, f64, f64)>,
}

impl KernelBench {
    /// The best (highest cycles/s) leg of the thread matrix.
    pub fn best(&self) -> Option<&KernelThreadBench> {
        self.threads
            .iter()
            .max_by(|a, b| a.cycles_per_sec.total_cmp(&b.cycles_per_sec))
    }
}

/// One serial-vs-parallel sweep measurement.
#[derive(Debug, Clone)]
pub struct FigureBench {
    /// Figure name, e.g. `fig06`.
    pub name: String,
    /// Wall-clock seconds pinned to one worker thread.
    pub serial_s: f64,
    /// Wall-clock seconds at [`BenchReport::threads`] workers.
    pub parallel_s: f64,
    /// `serial_s / parallel_s`.
    pub speedup: f64,
    /// Whether the two runs produced bit-identical figure data.
    pub identical: bool,
}

/// A complete benchmark baseline.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `"quick"` or `"full"`.
    pub scale: &'static str,
    /// Worker threads used for the parallel sweep legs.
    pub threads: usize,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// read speedups relative to this, not to `threads`.
    pub host_parallelism: usize,
    /// Kernel-throughput measurements.
    pub kernels: Vec<KernelBench>,
    /// Serial-vs-parallel sweep measurements.
    pub figures: Vec<FigureBench>,
}

/// Runs the full benchmark suite.
pub fn run(opts: &BenchOptions) -> BenchReport {
    let threads = opts.threads.max(1);
    let mut report = BenchReport {
        scale: if opts.scale.quick { "quick" } else { "full" },
        threads,
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        kernels: Vec::new(),
        figures: Vec::new(),
    };
    for (name, cfg) in kernel_cases(opts.scale) {
        eprintln!("bench: kernel {name} ...");
        if let Some(k) = kernel_bench(name, cfg, report.host_parallelism) {
            report.kernels.push(k);
        }
    }
    type FigureFn = fn(Scale) -> FigureData;
    let figure_cases: [(&str, FigureFn); 2] =
        [("fig06", figures::fig06), ("fig16", figures::fig16)];
    for (name, f) in figure_cases {
        eprintln!("bench: sweep {name} serial vs {threads} threads ...");
        report
            .figures
            .push(figure_bench(name, f, opts.scale, threads));
    }
    report
}

/// The kernel measurement matrix: one configuration per network model,
/// chosen so every optimized path is on the clock — the wormhole ring
/// (station worklist + route walk), the double-speed global ring (the
/// two-tick sub-cycle), the slotted ring (service order, route table
/// and flit pool), and the mesh (link tables + router worklist).
fn kernel_cases(scale: Scale) -> Vec<(String, SystemConfig)> {
    let spec = || "3:3:6".parse().expect("valid ring spec");
    let sized = |cfg: SystemConfig| cfg.with_sim(scale.sim);
    vec![
        (
            "ring 3:3:6".into(),
            sized(SystemConfig::new(
                NetworkSpec::ring(spec()),
                CacheLineSize::B64,
            )),
        ),
        (
            "ring 3:3:6 2x-global".into(),
            sized(SystemConfig::new(
                NetworkSpec::Ring {
                    spec: spec(),
                    speedup: 2,
                },
                CacheLineSize::B64,
            )),
        ),
        (
            "slotted-ring 3:3:6".into(),
            sized(SystemConfig::new(
                NetworkSpec::SlottedRing { spec: spec() },
                CacheLineSize::B64,
            )),
        ),
        (
            "mesh 7x7".into(),
            sized(SystemConfig::new(NetworkSpec::mesh(7), CacheLineSize::B64)),
        ),
        // A larger mesh with more row shards, so the thread matrix has
        // parallelism headroom beyond four threads.
        (
            "mesh 12x12".into(),
            sized(SystemConfig::new(NetworkSpec::mesh(12), CacheLineSize::B64)),
        ),
        // The hybrid crossover network: serial ring stations feeding
        // the sharded mesh kernel, both on the clock at once.
        (
            "hybrid 4x4:4".into(),
            sized(SystemConfig::new(
                NetworkSpec::Hybrid { side: 4, local: 4 },
                CacheLineSize::B64,
            )),
        ),
    ]
}

/// Trials per kernel leg; the fastest wall time is reported. Noise on
/// a shared host is one-sided — a trial can only ever be slower than
/// the machine's true speed — so best-of-N is far more stable between
/// runs than a single sample, which is what lets `--check-against`
/// hold a 10% tolerance without flapping.
const KERNEL_TRIALS: usize = 3;

/// Runs one kernel configuration at 1, 2, 4 and `host_max` intra-cycle
/// compute threads (deduplicated on the count the network actually
/// uses — serial models collapse to one leg) and checks that every leg
/// produces a bit-identical result fingerprint. Each leg takes the
/// best of [`KERNEL_TRIALS`] timed runs (construction excluded).
fn kernel_bench(name: String, cfg: SystemConfig, host_max: usize) -> Option<KernelBench> {
    let cycles = cfg.sim.horizon();
    // On a single-core host the multi-thread legs are pure overhead
    // measurements; run (and gate on) the single-thread leg only and
    // mark the matrix as skipped in the report.
    let threads_skipped = host_max <= 1;
    let mut requested = if threads_skipped {
        vec![1usize]
    } else {
        vec![1usize, 2, 4, host_max]
    };
    requested.sort_unstable();
    requested.dedup();
    let mut legs: Vec<KernelThreadBench> = Vec::new();
    let mut fingerprints: Vec<u64> = Vec::new();
    let mut percentiles = None;
    for t in requested {
        let mut wall_s = f64::INFINITY;
        let mut effective = 0;
        let mut skip = false;
        for trial in 0..KERNEL_TRIALS {
            let mut sys = match System::new(cfg.clone()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("warning: bench kernel {name} failed to build: {e}");
                    return None;
                }
            };
            sys.set_kernel_threads(t);
            effective = sys.kernel_threads();
            if legs.iter().any(|l| l.threads == effective) {
                skip = true;
                break;
            }
            let start = Instant::now();
            let result = match sys.run() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("warning: bench kernel {name} failed at {t} threads: {e}");
                    return None;
                }
            };
            wall_s = wall_s.min(start.elapsed().as_secs_f64());
            // Repeated trials of one leg are the same deterministic
            // run; record the fingerprint (and percentiles) once.
            if trial == 0 {
                fingerprints.push(result.fingerprint());
                if percentiles.is_none() {
                    percentiles = result.percentiles;
                }
            }
        }
        if skip {
            continue;
        }
        legs.push(KernelThreadBench {
            threads: effective,
            wall_s,
            cycles_per_sec: cycles as f64 / wall_s.max(1e-9),
        });
    }
    let base = legs.first()?;
    Some(KernelBench {
        name,
        cycles,
        wall_s: base.wall_s,
        cycles_per_sec: base.cycles_per_sec,
        identical: fingerprints.windows(2).all(|w| w[0] == w[1]),
        threads: legs.clone(),
        threads_skipped,
        percentiles,
    })
}

/// Compares `report` against a previously committed `BENCH_RUN.json`,
/// failing on any kernel whose **single-thread** cycles/s dropped by
/// more than `tolerance` (a fraction: `0.10` = 10%). Single-thread is
/// the gated number because it is independent of host core count;
/// multi-thread legs and kernels missing from the baseline are noted
/// but never gate. Also fails if any kernel's cross-thread `identical`
/// flag is false — a determinism break is always an error.
///
/// # Errors
///
/// Returns the list of violations as a human-readable string.
pub fn check_against(
    report: &BenchReport,
    baseline_json: &str,
    tolerance: f64,
) -> Result<String, String> {
    let mut summary = String::new();
    let mut failures = String::new();
    for k in &report.kernels {
        if !k.identical {
            let _ = writeln!(
                failures,
                "FAIL {:22} parallel kernel result diverged across thread counts",
                k.name
            );
        }
        match baseline_kernel_cps(baseline_json, &k.name) {
            Some(base) => {
                let ratio = k.cycles_per_sec / base.max(1e-9);
                let line = format!(
                    "{:22} single-thread {:>11.0} cycles/s vs baseline {:>11.0} ({:+.1}%)",
                    k.name,
                    k.cycles_per_sec,
                    base,
                    (ratio - 1.0) * 100.0
                );
                if ratio < 1.0 - tolerance {
                    let _ = writeln!(failures, "FAIL {line}");
                } else {
                    let _ = writeln!(summary, "  ok {line}");
                }
            }
            None => {
                let _ = writeln!(summary, "  -- {:22} not in baseline, skipped", k.name);
            }
        }
    }
    if failures.is_empty() {
        Ok(summary)
    } else {
        Err(format!("{failures}{summary}"))
    }
}

/// Extracts the single-thread `cycles_per_sec` of the named kernel from
/// a committed `BENCH_RUN.json` (schema 2 or 3: both store it as the
/// first `"cycles_per_sec"` field after the kernel's `"name"`).
fn baseline_kernel_cps(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let key = "\"cycles_per_sec\": ";
    let v = rest.find(key)? + key.len();
    let tail = &rest[v..];
    let end = tail
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Times `figure` once pinned to one sweep worker and once at
/// `threads`, restoring the process-default thread setting afterwards,
/// and compares the outputs bit-for-bit.
fn figure_bench(
    name: &str,
    figure: fn(Scale) -> FigureData,
    scale: Scale,
    threads: usize,
) -> FigureBench {
    set_sweep_threads(1);
    let start = Instant::now();
    let serial = figure(scale);
    let serial_s = start.elapsed().as_secs_f64();
    set_sweep_threads(threads);
    let start = Instant::now();
    let parallel = figure(scale);
    let parallel_s = start.elapsed().as_secs_f64();
    set_sweep_threads(0);
    FigureBench {
        name: name.to_string(),
        serial_s,
        parallel_s,
        speedup: serial_s / parallel_s.max(1e-9),
        identical: fingerprint(&serial) == fingerprint(&parallel),
    }
}

/// A bit-exact textual fingerprint of figure data: every label plus
/// the raw IEEE-754 bits of every point, so "identical" means what a
/// byte-for-byte artifact diff would mean.
fn fingerprint(data: &FigureData) -> String {
    let mut s = String::new();
    for (title, group) in data {
        s.push_str(title);
        s.push('\n');
        for series in group {
            s.push_str(&series.label);
            for &(x, y) in &series.points {
                let _ = write!(s, "|{:016x}:{:016x}", x.to_bits(), y.to_bits());
            }
            s.push('\n');
        }
    }
    s
}

impl BenchReport {
    /// Human-readable summary.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "benchmark baseline — scale {}, {} threads ({} host cores)",
            self.scale, self.threads, self.host_parallelism
        );
        let _ = writeln!(s, "\nkernel throughput:");
        for k in &self.kernels {
            let tail = match k.percentiles {
                Some((p50, p95, p99)) => {
                    format!("  p50/p95/p99 {p50:.0}/{p95:.0}/{p99:.0} cyc")
                }
                None => String::new(),
            };
            let _ = writeln!(
                s,
                "  {:22} {:>9} cycles in {:>7.3}s = {:>11.0} cycles/s{tail}",
                k.name, k.cycles, k.wall_s, k.cycles_per_sec
            );
            if k.threads_skipped {
                let _ = writeln!(s, "    thread matrix: skipped (single-core host)");
            } else if k.threads.len() > 1 {
                for leg in &k.threads {
                    let _ = writeln!(
                        s,
                        "    {:>2} threads: {:>11.0} cycles/s ({:.2}x)",
                        leg.threads,
                        leg.cycles_per_sec,
                        leg.cycles_per_sec / k.cycles_per_sec.max(1e-9)
                    );
                }
                let _ = writeln!(s, "    identical across thread counts: {}", k.identical);
            }
        }
        let _ = writeln!(s, "\nsweep scaling (serial vs {} threads):", self.threads);
        for f in &self.figures {
            let _ = writeln!(
                s,
                "  {:8} serial {:>7.3}s  parallel {:>7.3}s  speedup {:>5.2}x  identical: {}",
                f.name, f.serial_s, f.parallel_s, f.speedup, f.identical
            );
        }
        s
    }

    /// The versioned `BENCH_RUN.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(s, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"host_parallelism\": {},", self.host_parallelism);
        s.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let tail = match k.percentiles {
                Some((p50, p95, p99)) => {
                    format!(", \"p50\": {p50:.1}, \"p95\": {p95:.1}, \"p99\": {p99:.1}")
                }
                None => String::new(),
            };
            let mut legs = String::new();
            for (j, leg) in k.threads.iter().enumerate() {
                let _ = write!(
                    legs,
                    "{}{{\"threads\": {}, \"wall_s\": {:.6}, \"cycles_per_sec\": {:.1}}}",
                    if j > 0 { ", " } else { "" },
                    leg.threads,
                    leg.wall_s,
                    leg.cycles_per_sec
                );
            }
            let matrix = if k.threads_skipped {
                ", \"thread_matrix\": \"skipped\""
            } else {
                ""
            };
            let _ = write!(
                s,
                "    {{\"name\": \"{}\", \"cycles\": {}, \"wall_s\": {:.6}, \"cycles_per_sec\": {:.1}, \"identical\": {}, \"threads\": [{legs}]{matrix}{tail}}}",
                k.name, k.cycles, k.wall_s, k.cycles_per_sec, k.identical
            );
            s.push_str(if i + 1 < self.kernels.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"figures\": [\n");
        for (i, f) in self.figures.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": \"{}\", \"serial_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup\": {:.3}, \"identical\": {}}}",
                f.name, f.serial_s, f.parallel_s, f.speedup, f.identical
            );
            s.push_str(if i + 1 < self.figures.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_bench_measures_one_run() {
        let scale = Scale::quick();
        let cfg = SystemConfig::new(NetworkSpec::ring("4".parse().unwrap()), CacheLineSize::B32)
            .with_sim(crate::SimParams {
                warmup: 200,
                batch_cycles: 200,
                batches: 2,
            });
        let k = kernel_bench("tiny ring".into(), cfg, 4).expect("tiny run completes");
        assert_eq!(k.cycles, 600);
        assert!(k.wall_s > 0.0 && k.cycles_per_sec > 0.0);
        // The ring kernel is serial: the requested 1/2/4 thread legs
        // collapse to a single effective count.
        assert_eq!(k.threads.len(), 1);
        assert_eq!(k.threads[0].threads, 1);
        assert!(k.identical);
        let _ = scale;
    }

    #[test]
    fn mesh_kernel_bench_covers_thread_matrix_identically() {
        let cfg = SystemConfig::new(NetworkSpec::mesh(4), CacheLineSize::B32).with_sim(
            crate::SimParams {
                warmup: 200,
                batch_cycles: 200,
                batches: 2,
            },
        );
        let k = kernel_bench("tiny mesh".into(), cfg, 3).expect("tiny run completes");
        // Requested {1, 2, 3, 4}; a 4x4 mesh has 4 row shards, so all
        // four counts are effective and distinct.
        assert_eq!(
            k.threads.iter().map(|l| l.threads).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert!(k.identical, "parallel kernel must be bit-identical");
    }

    fn single_core_host_skips_the_thread_matrix_impl(network: NetworkSpec) -> KernelBench {
        let cfg = SystemConfig::new(network, CacheLineSize::B32).with_sim(crate::SimParams {
            warmup: 200,
            batch_cycles: 200,
            batches: 2,
        });
        kernel_bench("single-core".into(), cfg, 1).expect("tiny run completes")
    }

    #[test]
    fn single_core_host_skips_the_thread_matrix() {
        let k = single_core_host_skips_the_thread_matrix_impl(NetworkSpec::mesh(4));
        assert!(k.threads_skipped);
        assert_eq!(k.threads.len(), 1);
        assert_eq!(k.threads[0].threads, 1);
        let report = BenchReport {
            scale: "quick",
            threads: 1,
            host_parallelism: 1,
            kernels: vec![k],
            figures: vec![],
        };
        assert!(report.to_json().contains("\"thread_matrix\": \"skipped\""));
        assert!(report.to_text().contains("skipped (single-core host)"));
    }

    fn sample_report() -> BenchReport {
        BenchReport {
            scale: "quick",
            threads: 4,
            host_parallelism: 8,
            kernels: vec![KernelBench {
                name: "ring 3:3:6".into(),
                cycles: 1000,
                wall_s: 0.5,
                cycles_per_sec: 2000.0,
                identical: true,
                threads: vec![
                    KernelThreadBench {
                        threads: 1,
                        wall_s: 0.5,
                        cycles_per_sec: 2000.0,
                    },
                    KernelThreadBench {
                        threads: 4,
                        wall_s: 0.125,
                        cycles_per_sec: 8000.0,
                    },
                ],
                threads_skipped: false,
                percentiles: Some((40.0, 90.0, 140.0)),
            }],
            figures: vec![FigureBench {
                name: "fig06".into(),
                serial_s: 1.0,
                parallel_s: 0.5,
                speedup: 2.0,
                identical: true,
            }],
        }
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = sample_report();
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ringmesh-bench/3\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"threads\": [{\"threads\": 1"));
        assert!(json.contains("\"p99\": 140.0"));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(report.to_text().contains("fig06"));
        assert!(report.to_text().contains("4 threads"));
    }

    #[test]
    fn best_leg_is_highest_throughput() {
        let report = sample_report();
        assert_eq!(report.kernels[0].best().unwrap().threads, 4);
    }

    #[test]
    fn check_against_passes_within_tolerance() {
        let report = sample_report();
        // Baseline slightly faster than current: -5% is inside 10%.
        let baseline = r#"{"kernels": [{"name": "ring 3:3:6", "cycles_per_sec": 2100.0}]}"#;
        let summary = check_against(&report, baseline, 0.10).expect("within tolerance");
        assert!(summary.contains("ok"), "{summary}");
    }

    #[test]
    fn check_against_fails_on_regression() {
        let report = sample_report();
        let baseline = r#"{"kernels": [{"name": "ring 3:3:6", "cycles_per_sec": 4000.0}]}"#;
        let err = check_against(&report, baseline, 0.10).expect_err("50% regression");
        assert!(err.contains("FAIL"), "{err}");
        assert!(err.contains("ring 3:3:6"), "{err}");
    }

    #[test]
    fn check_against_skips_missing_kernels_and_flags_divergence() {
        let mut report = sample_report();
        let baseline = r#"{"kernels": [{"name": "other", "cycles_per_sec": 1.0}]}"#;
        let summary = check_against(&report, baseline, 0.10).expect("nothing to gate");
        assert!(summary.contains("not in baseline"), "{summary}");
        // A determinism break fails even with no baseline entry.
        report.kernels[0].identical = false;
        let err = check_against(&report, baseline, 0.10).expect_err("divergence");
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn baseline_parse_reads_schema3_shape() {
        let report = sample_report();
        let json = report.to_json();
        // Round-trip: the comparator must find the single-thread number
        // in the JSON this very module writes.
        assert_eq!(baseline_kernel_cps(&json, "ring 3:3:6"), Some(2000.0));
        assert_eq!(baseline_kernel_cps(&json, "nonexistent"), None);
    }
}
