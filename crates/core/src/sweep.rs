//! Parameter-sweep helpers: run a list of configurations and collect a
//! labelled series of `(system size, metric)` points.

use ringmesh_stats::Series;

use crate::system::{run_config, RunError, RunResult};
use crate::SystemConfig;

/// Scale of an experiment run.
///
/// `Full` regenerates the paper's figures at publication quality;
/// `Quick` shrinks run lengths and sweep ranges so the entire harness
/// finishes in minutes (used by smoke tests and the default `cargo
/// bench` invocation — set `RINGMESH_FULL=1` for full scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Batch-means run lengths for every simulation point.
    pub sim: crate::SimParams,
    /// Largest system size to sweep.
    pub max_pms: u32,
    /// Whether parameter lists should be thinned.
    pub quick: bool,
}

impl Scale {
    /// Publication-quality scale (the paper sweeps to 121/128 PMs).
    pub fn full() -> Self {
        Scale {
            sim: crate::SimParams::full(),
            max_pms: 128,
            quick: false,
        }
    }

    /// Fast scale for smoke tests and default benches.
    pub fn quick() -> Self {
        Scale {
            sim: crate::SimParams::quick(),
            max_pms: 40,
            quick: true,
        }
    }

    /// `Scale::full()` if the `RINGMESH_FULL` environment variable is
    /// set (to anything but `0`), else `Scale::quick()`.
    pub fn from_env() -> Self {
        match std::env::var("RINGMESH_FULL") {
            Ok(v) if v != "0" => Scale::full(),
            _ => Scale::quick(),
        }
    }
}

/// Runs every `(x, config)` point and collects `metric` of each result
/// into a series. Points whose simulation stalls (a deadlocked
/// saturated configuration) are skipped with a warning on stderr rather
/// than aborting the sweep.
pub fn run_series(
    label: impl Into<String>,
    points: Vec<(f64, SystemConfig)>,
    metric: impl Fn(&RunResult) -> f64,
) -> Series {
    let mut series = Series::new(label);
    for (x, cfg) in points {
        if let Some(result) = run_point(cfg, x) {
            series.push(x, metric(&result));
        }
    }
    series
}

/// Runs one configuration; a deadlocked (finite-buffer) run is retried
/// twice with perturbed seeds before the point is skipped with a
/// warning — rare stalls are seed-dependent and a retry recovers the
/// measurement without biasing it.
fn run_point(cfg: SystemConfig, x: f64) -> Option<RunResult> {
    let desc = cfg.network.label();
    let seed = cfg.seed;
    for attempt in 0..3u64 {
        let c = cfg
            .clone()
            .with_seed(seed.wrapping_add(attempt * 0x9e37_79b9));
        match run_config(c) {
            Ok(result) => {
                if result.latency.n == 0 {
                    eprintln!("warning: {desc} at x={x}: no completed transactions");
                    return None;
                }
                return Some(result);
            }
            Err(RunError::Stall(e)) => {
                eprintln!("warning: {desc} at x={x} (attempt {attempt}): {e}");
            }
            Err(e) => {
                eprintln!("warning: skipping {desc} at x={x}: {e}");
                return None;
            }
        }
    }
    None
}

/// Runs every point once and returns full results, for figures that
/// need several metrics (latency *and* utilization) from one sweep.
pub fn run_points(points: Vec<(f64, SystemConfig)>) -> Vec<(f64, RunResult)> {
    let mut out = Vec::new();
    for (x, cfg) in points {
        if let Some(result) = run_point(cfg, x) {
            out.push((x, result));
        }
    }
    out
}

/// Extracts a metric series from pre-computed results.
pub fn series_of(
    label: impl Into<String>,
    points: &[(f64, RunResult)],
    metric: impl Fn(&RunResult) -> f64,
) -> Series {
    let mut s = Series::new(label);
    for (x, r) in points {
        s.push(*x, metric(r));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkSpec, SystemConfig};
    use ringmesh_net::CacheLineSize;

    #[test]
    fn scale_from_env_defaults_quick() {
        // The test environment does not set RINGMESH_FULL.
        if std::env::var("RINGMESH_FULL").is_err() {
            assert!(Scale::from_env().quick);
        }
    }

    #[test]
    fn run_series_collects_points() {
        let mk = |n: u32| {
            SystemConfig::new(
                NetworkSpec::ring(ringmesh_ring::RingSpec::single(n)),
                CacheLineSize::B32,
            )
            .with_sim(crate::SimParams {
                warmup: 200,
                batch_cycles: 200,
                batches: 3,
            })
        };
        let s = run_series("demo", vec![(2.0, mk(2)), (4.0, mk(4))], |r| {
            r.mean_latency()
        });
        assert_eq!(s.points.len(), 2);
        assert!(s.points.iter().all(|&(_, y)| y > 0.0));
    }
}
