//! Parameter-sweep helpers: run a list of configurations and collect a
//! labelled series of `(system size, metric)` points.
//!
//! Sweep points are independent simulations — each owns its own seeded
//! RNG and event calendar — so [`run_series`] and [`run_points`] fan
//! them across a [`WorkerPool`] (sized by `RINGMESH_THREADS`, default:
//! available parallelism) while collecting results in input order. The
//! output is byte-identical to a serial run at any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use ringmesh_engine::WorkerPool;
use ringmesh_stats::Series;

use crate::system::{run_config, RunError, RunResult};
use crate::SystemConfig;

/// Scale of an experiment run.
///
/// `Full` regenerates the paper's figures at publication quality;
/// `Quick` shrinks run lengths and sweep ranges so the entire harness
/// finishes in minutes (used by smoke tests and the default `cargo
/// bench` invocation — set `RINGMESH_FULL=1` for full scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Batch-means run lengths for every simulation point.
    pub sim: crate::SimParams,
    /// Largest system size to sweep.
    pub max_pms: u32,
    /// Whether parameter lists should be thinned.
    pub quick: bool,
}

impl Scale {
    /// Publication-quality scale (the paper sweeps to 121/128 PMs).
    pub fn full() -> Self {
        Scale {
            sim: crate::SimParams::full(),
            max_pms: 128,
            quick: false,
        }
    }

    /// Fast scale for smoke tests and default benches.
    pub fn quick() -> Self {
        Scale {
            sim: crate::SimParams::quick(),
            max_pms: 40,
            quick: true,
        }
    }

    /// `Scale::full()` if the `RINGMESH_FULL` environment variable is
    /// set (to anything but `0`), else `Scale::quick()`. The variable
    /// is read once per process and the decision cached.
    pub fn from_env() -> Self {
        static SCALE: OnceLock<Scale> = OnceLock::new();
        *SCALE.get_or_init(|| match std::env::var("RINGMESH_FULL") {
            Ok(v) if v != "0" => Scale::full(),
            _ => Scale::quick(),
        })
    }
}

/// Process-wide worker-count override for the sweep executor; 0 means
/// "use the environment default". Unlike the `OnceLock`-cached env
/// parse, this can be changed repeatedly within one process, which the
/// `ringmesh bench` subcommand uses to time the same figure serially
/// and in parallel.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the number of sweep worker threads for subsequent
/// [`run_series`]/[`run_points`] calls; `0` restores the
/// `RINGMESH_THREADS`/available-parallelism default.
pub fn set_sweep_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// The pool [`run_series`]/[`run_points`] execute on: the
/// [`set_sweep_threads`] override when set, else the environment
/// default. Shared with the ablation harness so every fan-out in the
/// crate honours the same thread settings.
pub(crate) fn default_pool() -> WorkerPool {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => WorkerPool::from_env(),
        n => WorkerPool::new(n),
    }
}

/// Runs every `(x, config)` point and collects `metric` of each result
/// into a series. Points whose simulation stalls (a deadlocked
/// saturated configuration) are skipped with a warning on stderr rather
/// than aborting the sweep.
///
/// Points execute on the default [`WorkerPool`] (see
/// [`set_sweep_threads`]); use [`run_series_with`] to pin a pool
/// explicitly.
pub fn run_series(
    label: impl Into<String>,
    points: Vec<(f64, SystemConfig)>,
    metric: impl Fn(&RunResult) -> f64,
) -> Series {
    run_series_with(&default_pool(), label, points, metric)
}

/// [`run_series`] on an explicit pool. Results are collected in input
/// order and are byte-identical for any thread count (every point owns
/// its own seeded RNG).
pub fn run_series_with(
    pool: &WorkerPool,
    label: impl Into<String>,
    points: Vec<(f64, SystemConfig)>,
    metric: impl Fn(&RunResult) -> f64,
) -> Series {
    let label = label.into();
    let results = pool.map(points, |_, (x, cfg)| {
        run_point(&label, cfg, x).map(|r| (x, r))
    });
    let mut series = Series::new(label);
    for (x, result) in results.into_iter().flatten() {
        series.push(x, metric(&result));
    }
    series
}

/// Runs one configuration; a deadlocked (finite-buffer) run is retried
/// twice with perturbed seeds before the point is skipped with a
/// warning — rare stalls are seed-dependent and a retry recovers the
/// measurement without biasing it. This is the single stall-retry
/// helper shared by [`run_series`] and [`run_points`]; `label` names
/// the sweep in skip warnings so interleaved parallel-run warnings stay
/// attributable to their series.
fn run_point(label: &str, cfg: SystemConfig, x: f64) -> Option<RunResult> {
    let desc = cfg.network.label();
    let seed = cfg.seed;
    for attempt in 0..3u64 {
        let c = cfg
            .clone()
            .with_seed(seed.wrapping_add(attempt * 0x9e37_79b9));
        match run_config(c) {
            Ok(result) => {
                if result.latency.n == 0 {
                    eprintln!("warning: [{label}] {desc} at x={x}: no completed transactions");
                    return None;
                }
                return Some(result);
            }
            Err(RunError::Stall(e)) => {
                eprintln!("warning: [{label}] {desc} at x={x} (attempt {attempt}): {e}");
            }
            Err(e) => {
                eprintln!("warning: [{label}] skipping {desc} at x={x}: {e}");
                return None;
            }
        }
    }
    None
}

/// Runs every point once and returns full results, for figures that
/// need several metrics (latency *and* utilization) from one sweep.
/// Executes on the default [`WorkerPool`] like [`run_series`].
pub fn run_points(points: Vec<(f64, SystemConfig)>) -> Vec<(f64, RunResult)> {
    run_points_with(&default_pool(), "sweep", points)
}

/// [`run_points`] on an explicit pool, with `label` naming the sweep in
/// skip warnings.
pub fn run_points_with(
    pool: &WorkerPool,
    label: &str,
    points: Vec<(f64, SystemConfig)>,
) -> Vec<(f64, RunResult)> {
    pool.map(points, |_, (x, cfg)| {
        run_point(label, cfg, x).map(|r| (x, r))
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Extracts a metric series from pre-computed results.
pub fn series_of(
    label: impl Into<String>,
    points: &[(f64, RunResult)],
    metric: impl Fn(&RunResult) -> f64,
) -> Series {
    let mut s = Series::new(label);
    for (x, r) in points {
        s.push(*x, metric(r));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkSpec, SystemConfig};
    use ringmesh_net::CacheLineSize;

    #[test]
    fn scale_from_env_defaults_quick() {
        // The test environment does not set RINGMESH_FULL.
        if std::env::var("RINGMESH_FULL").is_err() {
            assert!(Scale::from_env().quick);
            // Cached: a second call returns the same decision.
            assert_eq!(Scale::from_env(), Scale::from_env());
        }
    }

    fn mk(n: u32) -> SystemConfig {
        SystemConfig::new(
            NetworkSpec::ring(ringmesh_ring::RingSpec::single(n)),
            CacheLineSize::B32,
        )
        .with_sim(crate::SimParams {
            warmup: 200,
            batch_cycles: 200,
            batches: 3,
        })
    }

    #[test]
    fn run_series_collects_points() {
        let s = run_series("demo", vec![(2.0, mk(2)), (4.0, mk(4))], |r| {
            r.mean_latency()
        });
        assert_eq!(s.points.len(), 2);
        assert!(s.points.iter().all(|&(_, y)| y > 0.0));
    }

    #[test]
    fn explicit_pools_match_bitwise() {
        let points = |n: u32| (2..=n).map(|k| (f64::from(k), mk(k))).collect::<Vec<_>>();
        let serial = run_series_with(&WorkerPool::new(1), "det", points(5), |r| r.mean_latency());
        let pooled = run_series_with(&WorkerPool::new(4), "det", points(5), |r| r.mean_latency());
        let bits = |s: &Series| {
            s.points
                .iter()
                .map(|&(x, y)| (x.to_bits(), y.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&serial), bits(&pooled));
    }
}
