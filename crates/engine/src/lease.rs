//! Time-bounded leases and capped exponential backoff — the dispatch
//! primitives behind the distributed sweep fleet.
//!
//! A coordinator that hands work to remote workers needs two small,
//! deterministic-by-construction pieces of bookkeeping:
//!
//! - [`Lease`] — a renewable claim on one unit of work. The holder must
//!   show progress (renew) before the deadline or the work is assumed
//!   lost and becomes eligible for re-dispatch. Renewal extends the
//!   deadline by the original duration, so a healthy worker streaming
//!   heartbeats holds its lease indefinitely while a dead or wedged one
//!   loses it after exactly one lease period.
//! - [`Backoff`] — a capped exponential delay schedule for re-dispatch
//!   attempts. Each failure doubles the delay up to the cap, so a job
//!   that keeps dying (bad worker, poisoned config) cannot hot-loop the
//!   dispatcher, while the first retry stays fast.
//!
//! Both are plain value types over [`std::time::Instant`]; nothing here
//! spawns threads or touches the network.

use std::time::{Duration, Instant};

/// A renewable, time-bounded claim on one unit of dispatched work.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use ringmesh_engine::Lease;
///
/// let mut lease = Lease::new(Duration::from_secs(10));
/// assert!(!lease.expired());
/// lease.renew(); // heartbeat arrived: deadline pushed out again
/// assert!(lease.remaining() > Duration::from_secs(9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    duration: Duration,
    deadline: Instant,
}

impl Lease {
    /// A fresh lease expiring `duration` from now.
    pub fn new(duration: Duration) -> Self {
        Lease {
            duration,
            deadline: Instant::now() + duration,
        }
    }

    /// The lease period granted at construction (renewals extend by
    /// this much).
    pub fn duration(&self) -> Duration {
        self.duration
    }

    /// Extends the deadline to one full period from now. Call on every
    /// heartbeat or progress report from the holder.
    pub fn renew(&mut self) {
        self.deadline = Instant::now() + self.duration;
    }

    /// True once the deadline has passed without a renewal.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.deadline
    }

    /// Time left before expiry (zero if already expired).
    pub fn remaining(&self) -> Duration {
        self.deadline.saturating_duration_since(Instant::now())
    }
}

/// A capped exponential backoff schedule: `base`, `2*base`, `4*base`,
/// … never exceeding `cap`.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use ringmesh_engine::Backoff;
///
/// let mut b = Backoff::new(Duration::from_millis(100), Duration::from_millis(350));
/// assert_eq!(b.next_delay(), Duration::from_millis(100));
/// assert_eq!(b.next_delay(), Duration::from_millis(200));
/// assert_eq!(b.next_delay(), Duration::from_millis(350)); // capped
/// assert_eq!(b.next_delay(), Duration::from_millis(350));
/// assert_eq!(b.attempts(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempts: u32,
}

impl Backoff {
    /// A schedule starting at `base` and doubling up to `cap`. A zero
    /// `base` is clamped to one millisecond so the schedule always
    /// makes progress toward the cap.
    pub fn new(base: Duration, cap: Duration) -> Self {
        Backoff {
            base: base.max(Duration::from_millis(1)),
            cap: cap.max(base),
            attempts: 0,
        }
    }

    /// Failures recorded so far (calls to [`next_delay`](Self::next_delay)).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Records one more failure and returns how long to wait before the
    /// next attempt.
    pub fn next_delay(&mut self) -> Duration {
        let delay = self.delay_for(self.attempts);
        self.attempts += 1;
        delay
    }

    /// The delay after `attempt` prior failures (0-based), without
    /// recording anything: `base * 2^attempt`, capped.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt.min(31)).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_expires_without_renewal_and_survives_with_it() {
        let mut lease = Lease::new(Duration::from_millis(40));
        assert!(!lease.expired());
        assert!(lease.remaining() <= Duration::from_millis(40));
        std::thread::sleep(Duration::from_millis(25));
        lease.renew();
        std::thread::sleep(Duration::from_millis(25));
        assert!(!lease.expired(), "renewal must push the deadline out");
        std::thread::sleep(Duration::from_millis(30));
        assert!(lease.expired(), "no renewal ⇒ expiry after one period");
        assert_eq!(lease.remaining(), Duration::ZERO);
    }

    #[test]
    fn zero_duration_lease_is_born_expired() {
        let lease = Lease::new(Duration::ZERO);
        assert!(lease.expired());
    }

    #[test]
    fn backoff_doubles_to_the_cap_and_stays_there() {
        let mut b = Backoff::new(Duration::from_millis(50), Duration::from_secs(1));
        let delays: Vec<u64> = (0..7).map(|_| b.next_delay().as_millis() as u64).collect();
        assert_eq!(delays, vec![50, 100, 200, 400, 800, 1000, 1000]);
        assert_eq!(b.attempts(), 7);
    }

    #[test]
    fn backoff_never_overflows_at_absurd_attempt_counts() {
        let b = Backoff::new(Duration::from_secs(1), Duration::from_secs(30));
        assert_eq!(b.delay_for(63), Duration::from_secs(30));
        assert_eq!(b.delay_for(u32::MAX), Duration::from_secs(30));
    }

    #[test]
    fn zero_base_is_clamped_so_delays_still_grow() {
        let mut b = Backoff::new(Duration::ZERO, Duration::from_millis(8));
        assert!(b.next_delay() >= Duration::from_millis(1));
        assert!(b.next_delay() >= Duration::from_millis(2));
    }
}
