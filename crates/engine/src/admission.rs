//! Cooperative-shutdown and admission-control primitives for services
//! built on the simulation kernel.
//!
//! The serve layer runs one session per connection and one batch per
//! `run` request, all sharing a single [`WorkerPool`](crate::WorkerPool).
//! Two small std-only primitives keep that safe under load:
//!
//! - [`StopFlag`] — a cloneable cooperative-shutdown signal. Long-running
//!   work polls it at natural pause points (window boundaries, request
//!   boundaries) and winds down cleanly: checkpoints are flushed, journals
//!   synced, partial output never emitted.
//! - [`AdmissionGate`] — a bounded in-flight counter with RAII permits.
//!   Capacity is fixed at construction; [`AdmissionGate::try_enter`]
//!   never blocks, so a saturated service *sheds* load with a typed
//!   `busy` reply instead of hanging the client.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A cloneable cooperative-shutdown signal.
///
/// All clones observe the same flag; once [`set`](StopFlag::set), it
/// stays set for the life of the process (there is deliberately no
/// reset — shutdown is one-way).
#[derive(Debug, Clone, Default)]
pub struct StopFlag(Arc<AtomicBool>);

impl StopFlag {
    /// A fresh, unset flag.
    pub fn new() -> Self {
        StopFlag::default()
    }

    /// Requests shutdown. Idempotent; safe from any thread.
    pub fn set(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been requested.
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A bounded in-flight counter that sheds load instead of blocking.
///
/// # Example
///
/// ```
/// use ringmesh_engine::AdmissionGate;
///
/// let gate = AdmissionGate::new(1);
/// let permit = gate.try_enter().expect("capacity free");
/// assert!(gate.try_enter().is_none(), "gate is full");
/// drop(permit);
/// assert!(gate.try_enter().is_some(), "capacity returned");
/// ```
#[derive(Debug)]
pub struct AdmissionGate {
    limit: usize,
    in_flight: AtomicUsize,
}

impl AdmissionGate {
    /// A gate admitting at most `limit` concurrent holders; zero is
    /// clamped to one (a gate that admits nothing is never useful).
    pub fn new(limit: usize) -> Self {
        AdmissionGate {
            limit: limit.max(1),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// The configured capacity.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Permits currently held.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Claims a permit if capacity is free; `None` means the caller
    /// should shed the work (reply `busy`), never wait.
    pub fn try_enter(&self) -> Option<Permit<'_>> {
        let mut cur = self.in_flight.load(Ordering::SeqCst);
        loop {
            if cur >= self.limit {
                return None;
            }
            match self
                .in_flight
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return Some(Permit { gate: self }),
                Err(now) => cur = now,
            }
        }
    }
}

/// A held admission slot; dropping it returns the capacity.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_flag_is_shared_across_clones() {
        let a = StopFlag::new();
        let b = a.clone();
        assert!(!a.is_set() && !b.is_set());
        b.set();
        assert!(a.is_set() && b.is_set());
        b.set(); // idempotent
        assert!(a.is_set());
    }

    #[test]
    fn gate_admits_up_to_its_limit_and_recycles_permits() {
        let gate = AdmissionGate::new(2);
        assert_eq!(gate.limit(), 2);
        let p1 = gate.try_enter().unwrap();
        let p2 = gate.try_enter().unwrap();
        assert_eq!(gate.in_flight(), 2);
        assert!(gate.try_enter().is_none(), "full gate sheds");
        drop(p1);
        assert_eq!(gate.in_flight(), 1);
        let p3 = gate.try_enter().unwrap();
        assert!(gate.try_enter().is_none());
        drop((p2, p3));
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let gate = AdmissionGate::new(0);
        assert_eq!(gate.limit(), 1);
        assert!(gate.try_enter().is_some());
    }

    #[test]
    fn concurrent_claims_never_exceed_the_limit() {
        let gate = AdmissionGate::new(3);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..200 {
                        if let Some(_p) = gate.try_enter() {
                            let seen = gate.in_flight();
                            peak.fetch_max(seen, Ordering::SeqCst);
                            assert!(seen <= 3, "over-admitted: {seen}");
                        }
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) >= 1);
        assert_eq!(gate.in_flight(), 0);
    }
}
