//! Intra-cycle kernel parallelism: a persistent worker pool that fans
//! the per-cycle node loop of a network model across threads while
//! keeping every observable byte identical to a serial run.
//!
//! # Why a second pool
//!
//! [`WorkerPool`](crate::WorkerPool) fans out *whole simulations* (sweep
//! points) and spawns scoped threads per call — fine at that granularity
//! because each call runs for seconds. The cycle kernel is the opposite
//! regime: a `mesh 7x7` cycle is a few microseconds, stepped hundreds of
//! thousands of times, so thread spawn (or even a condvar round-trip) per
//! cycle would swamp the work. [`KernelPool`] therefore keeps its workers
//! alive for the lifetime of the network and hands them one *task* (a
//! `Fn(usize)` over shard indices) per parallel phase, with a spin-first
//! barrier tuned for microsecond-scale phases.
//!
//! # Determinism contract
//!
//! The pool only distributes *which thread* computes each shard; it never
//! changes *observable order*. Callers split each cycle into:
//!
//! 1. a **compute** phase — every shard reads shared previous-cycle state
//!    (registered stop/go, the packet store, fault schedules) and writes
//!    only shard-local buffers; the pool runs shards in any order on any
//!    thread;
//! 2. a serial **commit** phase — the caller applies each shard's buffered
//!    effects in fixed shard order on one thread.
//!
//! Because phase 1 is read-shared/write-local and phase 2 is serial and
//! order-fixed, delivered-packet streams, ledger updates, RNG draws,
//! tracer output and snapshot bytes are identical at any thread count.
//!
//! # Thread-count configuration
//!
//! Kernel threads are sized by, in precedence order:
//!
//! 1. [`set_kernel_threads`] — explicit programmatic/CLI override
//!    (`ringmesh --kernel-threads N`);
//! 2. the `RINGMESH_KERNEL_THREADS` environment variable, read once per
//!    process;
//! 3. the default of **1** (serial; no worker threads are ever spawned).
//!
//! [`effective_kernel_threads`] additionally applies an oversubscription
//! guard: while a sweep [`WorkerPool`](crate::WorkerPool) is fanning out
//! `W` simulations, each simulation's kernel is clamped to
//! `max(1, available_parallelism / W)` so `sweep × kernel` never
//! oversubscribes the host. The clamp warns (once) on stderr when it
//! engages. Code that constructs a [`KernelPool`] directly with an
//! explicit count (determinism tests comparing thread counts) bypasses
//! the guard.

#![allow(unsafe_code)] // lifetime-erased task pointer + disjoint &mut distribution; see SAFETY comments.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Explicit kernel-thread override (0 = unset). Highest precedence.
static KERNEL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Width of the sweep currently fanning out on a `WorkerPool` (0 = no
/// sweep active). Written by the sweep pool around `map`/`run_jobs`,
/// read by the oversubscription guard. The value is advisory: kernels
/// sized while it is stale merely use more or fewer threads, which by
/// the determinism contract cannot change any result byte.
static SWEEP_WIDTH: AtomicUsize = AtomicUsize::new(0);

/// Whether the oversubscription clamp has already warned this process.
static CLAMP_WARNED: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide kernel thread count, overriding
/// `RINGMESH_KERNEL_THREADS`. `0` clears the override. Networks size
/// their pools when constructed (or when `set_kernel_threads` is called
/// on them); already-built pools are unaffected.
pub fn set_kernel_threads(threads: usize) {
    KERNEL_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// The configured kernel thread count: the [`set_kernel_threads`]
/// override if set, else `RINGMESH_KERNEL_THREADS` if set to a positive
/// integer (read once per process), else 1 (serial).
pub fn configured_kernel_threads() -> usize {
    let over = KERNEL_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    ENV.get_or_init(|| {
        std::env::var("RINGMESH_KERNEL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
    .unwrap_or(1)
}

/// Marks `width` sweep workers as active (0 = sweep finished). Called
/// by the sweep `WorkerPool` so [`effective_kernel_threads`] can guard
/// against `sweep × kernel` oversubscription.
pub fn set_active_sweep_width(width: usize) {
    SWEEP_WIDTH.store(width, Ordering::Relaxed);
}

/// [`configured_kernel_threads`] with the oversubscription guard
/// applied: while a sweep of width `W > 1` is active, the kernel is
/// clamped to `max(1, available_parallelism / W)`.
pub fn effective_kernel_threads() -> usize {
    let want = configured_kernel_threads();
    let sweep = SWEEP_WIDTH.load(Ordering::Relaxed);
    if want <= 1 || sweep <= 1 {
        return want;
    }
    let host = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let allowed = (host / sweep).max(1);
    if want > allowed && !CLAMP_WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "warning: clamping kernel threads {want} -> {allowed} \
             ({sweep} sweep workers on {host} hardware threads)"
        );
    }
    want.min(allowed)
}

/// A raw base pointer shared across the pool's threads so each can
/// form `&mut items[i]` for the indices it claims.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Element pointer at `i`. A method (not direct field access) so
    /// closures capture the whole `SendPtr` — edition-2021 disjoint
    /// capture would otherwise capture the raw `*mut T` field itself,
    /// which is not `Sync`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds of the allocation behind the pointer.
    unsafe fn at(&self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

// SAFETY: the pointer is only used to index disjoint elements (one
// claim per index, enforced by the pool's atomic cursor), so sharing
// it across threads is sound.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// A lifetime-erased pointer to the current parallel task.
///
/// The pool guarantees (via the quiescence handshake in
/// [`KernelPool::run_task`]) that no worker dereferences the pointer
/// after `run_task` returns, so erasing the borrow lifetime is sound.
#[derive(Clone, Copy)]
struct ErasedTask(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are
// fine) and the pool's handshake bounds every dereference within the
// lifetime of the `run_task` borrow.
unsafe impl Send for ErasedTask {}

/// What workers wait on: the current task (if any) and a generation
/// counter bumped once per `run_task` so sleeping workers can tell a
/// new task from a spurious wakeup.
struct TaskCell {
    task: Option<ErasedTask>,
    generation: u64,
    shutdown: bool,
}

struct Shared {
    cell: Mutex<TaskCell>,
    wake: Condvar,
    /// Next shard index to claim. Claims at or past `limit` are no-ops.
    cursor: AtomicUsize,
    /// One past the last valid shard index for the current task.
    limit: AtomicUsize,
    /// Shards fully computed for the current task.
    done: AtomicUsize,
    /// Workers currently parked or between tasks. `run_task` returns
    /// only once all workers are idle again, which is what makes the
    /// borrow erasure in [`ErasedTask`] sound.
    idle: AtomicUsize,
    /// Set when a task panicked on a worker; re-raised by `run_task`.
    panicked: AtomicBool,
}

/// A persistent pool of kernel worker threads executing one indexed
/// task at a time (see the [module docs](self)).
///
/// A pool of `threads <= 1` spawns nothing and runs every task inline
/// on the caller's thread — the default, so serial runs pay zero
/// synchronization.
pub struct KernelPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for KernelPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl Default for KernelPool {
    fn default() -> Self {
        KernelPool::serial()
    }
}

impl KernelPool {
    /// A pool that runs everything inline on the caller's thread.
    pub fn serial() -> Self {
        KernelPool::new(1)
    }

    /// A pool of `threads` total compute threads: the caller's thread
    /// plus `threads - 1` persistent workers. Zero is clamped to one.
    pub fn new(threads: usize) -> Self {
        let workers_wanted = threads.max(1) - 1;
        let shared = Arc::new(Shared {
            cell: Mutex::new(TaskCell {
                task: None,
                generation: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            cursor: AtomicUsize::new(0),
            limit: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            idle: AtomicUsize::new(workers_wanted),
            panicked: AtomicBool::new(false),
        });
        let workers = (0..workers_wanted)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ringmesh-kernel-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn kernel worker")
            })
            .collect();
        KernelPool { shared, workers }
    }

    /// Total compute threads (the caller's plus persistent workers).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `f(i, &mut items[i])` for every item, distributing items
    /// across the pool. Items are claimed dynamically from an atomic
    /// cursor; each index is claimed by exactly one thread. Returns
    /// once every item has been processed and all workers are idle
    /// again.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic on the caller's thread) if `f` panicked on
    /// any item.
    pub fn run_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = items.len();
        if self.workers.is_empty() || n <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let base = SendPtr(items.as_mut_ptr());
        let task = move |i: usize| {
            // SAFETY: `i < n` (enforced by the claim loop) and every
            // index is claimed exactly once, so this `&mut` is the only
            // live reference to `items[i]`.
            let item = unsafe { &mut *base.at(i) };
            f(i, item);
        };
        self.run_task(n, &task);
    }

    /// Distributes `task(0..n)` across the pool, each index exactly
    /// once, and waits for completion plus worker quiescence.
    fn run_task(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
        let shared = &*self.shared;
        // Publish the work. `done`/`cursor` are reset while no task is
        // visible (workers are idle between generations).
        shared.done.store(0, Ordering::Relaxed);
        shared.limit.store(n, Ordering::Relaxed);
        shared.cursor.store(0, Ordering::Release);
        let erased: *const (dyn Fn(usize) + Sync) = task;
        // SAFETY: erases the borrow lifetime only; the quiescence
        // handshake below keeps every dereference inside this call.
        let erased: ErasedTask = ErasedTask(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(erased)
        });
        {
            let mut cell = self.shared.cell.lock().expect("kernel pool poisoned");
            cell.task = Some(erased);
            cell.generation += 1;
        }
        shared.wake.notify_all();
        // The caller's thread participates in the claim loop.
        work(shared, task);
        // 1. Wait until every index has been computed (a panicking index
        //    still counts as done, so this cannot hang).
        spin_until(|| shared.done.load(Ordering::Acquire) >= n);
        // 2. Unpublish the task so late-waking workers see nothing.
        {
            let mut cell = self.shared.cell.lock().expect("kernel pool poisoned");
            cell.task = None;
        }
        // 3. Wait until every worker is idle again: a worker that did
        //    grab the task pointer has finished with it, so the borrow
        //    behind `ErasedTask` is provably dead from here on.
        let workers = self.workers.len();
        spin_until(|| shared.idle.load(Ordering::Acquire) >= workers);
        if shared.panicked.swap(false, Ordering::Relaxed) {
            panic!("kernel worker panicked while stepping a shard");
        }
    }
}

impl Drop for KernelPool {
    fn drop(&mut self) {
        {
            let mut cell = self.shared.cell.lock().expect("kernel pool poisoned");
            cell.shutdown = true;
        }
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Claims indices until the cursor passes the limit, running `task` on
/// each and counting completions (panics included, so the barrier in
/// `run_task` cannot deadlock on a panicked shard).
fn work(shared: &Shared, task: &(dyn Fn(usize) + Sync)) {
    loop {
        let i = shared.cursor.fetch_add(1, Ordering::AcqRel);
        if i >= shared.limit.load(Ordering::Acquire) {
            break;
        }
        if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
            shared.panicked.store(true, Ordering::Relaxed);
        }
        shared.done.fetch_add(1, Ordering::AcqRel);
    }
}

/// Spins briefly (parallel phases are microseconds), then yields.
fn spin_until(cond: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !cond() {
        spins += 1;
        if spins < 1 << 14 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_generation = 0u64;
    loop {
        let task = {
            let mut cell = shared.cell.lock().expect("kernel pool poisoned");
            loop {
                if cell.shutdown {
                    return;
                }
                if cell.generation != seen_generation {
                    seen_generation = cell.generation;
                    if let Some(t) = cell.task {
                        // Mark busy *while holding the lock*, so
                        // `run_task`'s step 2 (which takes this lock)
                        // cannot observe all-idle while we hold the
                        // task pointer.
                        shared.idle.fetch_sub(1, Ordering::AcqRel);
                        break t;
                    }
                    // Generation moved but the task is already
                    // unpublished: that run completed without us.
                    continue;
                }
                cell = shared.wake.wait(cell).expect("kernel pool poisoned");
            }
        };
        // SAFETY: `run_task` does not return until this worker goes
        // idle again, so the borrow behind the pointer is live.
        let task = unsafe { &*task.0 };
        work(shared, task);
        shared.idle.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_pool_runs_inline() {
        let pool = KernelPool::serial();
        assert_eq!(pool.threads(), 1);
        let mut items = vec![0u64; 8];
        pool.run_mut(&mut items, |i, x| *x = i as u64 * 3);
        assert_eq!(items, (0..8).map(|i| i * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn every_index_visited_exactly_once() {
        let pool = KernelPool::new(4);
        let mut items = vec![0u32; 64];
        pool.run_mut(&mut items, |_, x| *x += 1);
        assert!(items.iter().all(|&x| x == 1));
    }

    #[test]
    fn pool_is_reusable_across_many_cycles() {
        // The kernel regime: thousands of tiny tasks on one pool.
        let pool = KernelPool::new(3);
        let mut items = vec![0u64; 7];
        for _ in 0..10_000 {
            pool.run_mut(&mut items, |_, x| *x += 1);
        }
        assert!(items.iter().all(|&x| x == 10_000));
    }

    #[test]
    fn results_match_serial_bitwise() {
        let work = |i: usize, x: &mut f64| *x = (i as f64).sqrt() * 1e9;
        let mut serial = vec![0f64; 33];
        KernelPool::serial().run_mut(&mut serial, work);
        for threads in [2, 3, 8] {
            let mut parallel = vec![0f64; 33];
            KernelPool::new(threads).run_mut(&mut parallel, work);
            let bits = |v: &[f64]| v.iter().map(|y| y.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&serial), bits(&parallel), "threads={threads}");
        }
    }

    #[test]
    fn threads_share_the_claim_loop() {
        // With enough items, at least two distinct threads participate.
        let pool = KernelPool::new(4);
        let mut seen: Vec<Option<std::thread::ThreadId>> = vec![None; 256];
        pool.run_mut(&mut seen, |_, slot| {
            std::thread::sleep(std::time::Duration::from_micros(50));
            *slot = Some(std::thread::current().id());
        });
        let ids: Vec<_> = seen.into_iter().flatten().collect();
        assert_eq!(ids.len(), 256);
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(
            distinct.len() >= 2,
            "expected multiple threads, got {distinct:?}"
        );
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives_drop() {
        let pool = KernelPool::new(2);
        let mut items = vec![0u8; 16];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_mut(&mut items, |i, _| {
                if i == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool is still usable after a task panic.
        let mut again = vec![0u8; 4];
        pool.run_mut(&mut again, |_, x| *x = 1);
        assert_eq!(again, vec![1; 4]);
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let pool = KernelPool::new(4);
        let mut items: Vec<u8> = Vec::new();
        pool.run_mut(&mut items, |_, _| unreachable!());
    }

    #[test]
    fn effects_are_observable_after_return() {
        // A coarse memory-ordering check: sums written by workers are
        // visible to the caller immediately after run_mut returns.
        let pool = KernelPool::new(4);
        let total = AtomicU64::new(0);
        let mut items = vec![1u64; 128];
        pool.run_mut(&mut items, |_, x| {
            total.fetch_add(*x, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 128);
    }

    #[test]
    fn configured_threads_default_is_serial() {
        // No override, and the test env does not set the variable.
        if std::env::var("RINGMESH_KERNEL_THREADS").is_err() {
            assert_eq!(configured_kernel_threads(), 1);
        }
    }
}
