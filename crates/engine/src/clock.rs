//! Cycle-synchronous execution discipline.
//!
//! The flit-level network models are evaluated once per clock cycle in
//! two conceptual phases: every component first *computes* its transfers
//! from previous-cycle (registered) state, then all transfers *commit*
//! simultaneously. The network crates realise the two phases internally;
//! this module provides the outer driver plus the clock-divider used for
//! the double-speed global ring of §6 of the paper.

use crate::SimTime;

/// A system advanced one clock cycle at a time.
///
/// Implementors are expected to be deterministic: the same sequence of
/// `step_cycle` calls from the same initial state must produce the same
/// final state (all randomness must come from explicitly seeded
/// generators).
pub trait ClockedSystem {
    /// Advances the system by one base clock cycle. `cycle` is the index
    /// of the cycle being executed, starting from the value the system
    /// was constructed at (usually 0).
    fn step_cycle(&mut self, cycle: SimTime);
}

/// Runs `system` for `cycles` consecutive cycles starting at
/// `first_cycle`, returning the next cycle index (i.e. `first_cycle +
/// cycles`).
///
/// # Example
///
/// ```
/// use ringmesh_engine::{run_cycles, ClockedSystem};
///
/// struct Counter(u64);
/// impl ClockedSystem for Counter {
///     fn step_cycle(&mut self, _cycle: u64) { self.0 += 1; }
/// }
///
/// let mut c = Counter(0);
/// let next = run_cycles(&mut c, 0, 100);
/// assert_eq!((c.0, next), (100, 100));
/// ```
pub fn run_cycles<S: ClockedSystem>(
    system: &mut S,
    first_cycle: SimTime,
    cycles: SimTime,
) -> SimTime {
    let end = first_cycle + cycles;
    for c in first_cycle..end {
        system.step_cycle(c);
    }
    end
}

/// Like [`run_cycles`], but announces each cycle to `tracer` before the
/// system steps it, so batch windows in an attached recorder line up
/// with clock-phase boundaries. With a disabled tracer this costs one
/// predictable branch per cycle.
pub fn run_cycles_traced<S: ClockedSystem>(
    system: &mut S,
    first_cycle: SimTime,
    cycles: SimTime,
    tracer: &mut ringmesh_trace::Tracer,
) -> SimTime {
    let end = first_cycle + cycles;
    for c in first_cycle..end {
        tracer.cycle(c);
        system.step_cycle(c);
    }
    end
}

/// Divides a fast tick stream down to a slower clock domain.
///
/// The simulator kernel runs at the *fastest* clock in the system; a
/// component in a slower domain is active only on ticks where
/// [`ClockDivider::active`] is true. With `period == 1` the component
/// runs every tick; with `period == 2` every second tick, and so on.
/// This is how a double-speed global ring coexists with normal-speed
/// local rings: the kernel ticks at the global-ring rate and everything
/// else uses a `period`-2 divider.
///
/// # Example
///
/// ```
/// use ringmesh_engine::ClockDivider;
///
/// let slow = ClockDivider::new(2);
/// let ticks: Vec<bool> = (0..6).map(|t| slow.active(t)).collect();
/// assert_eq!(ticks, [true, false, true, false, true, false]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockDivider {
    period: u32,
}

impl ClockDivider {
    /// Creates a divider for a domain that runs every `period` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u32) -> Self {
        assert!(period > 0, "clock divider period must be positive");
        ClockDivider { period }
    }

    /// The division period in ticks.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Whether the domain is active on tick `tick`.
    pub fn active(&self, tick: SimTime) -> bool {
        tick.is_multiple_of(u64::from(self.period))
    }

    /// Converts a tick count into the number of elapsed cycles in this
    /// domain (rounding down).
    pub fn cycles_elapsed(&self, ticks: SimTime) -> SimTime {
        ticks / u64::from(self.period)
    }
}

impl Default for ClockDivider {
    fn default() -> Self {
        ClockDivider::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder(Vec<SimTime>);
    impl ClockedSystem for Recorder {
        fn step_cycle(&mut self, cycle: SimTime) {
            self.0.push(cycle);
        }
    }

    #[test]
    fn run_cycles_passes_consecutive_indices() {
        let mut r = Recorder(Vec::new());
        let next = run_cycles(&mut r, 5, 4);
        assert_eq!(r.0, vec![5, 6, 7, 8]);
        assert_eq!(next, 9);
    }

    #[test]
    fn traced_run_announces_every_cycle() {
        let mut r = Recorder(Vec::new());
        let mut t = ringmesh_trace::Tracer::recording(Default::default());
        let next = run_cycles_traced(&mut r, 0, 3, &mut t);
        assert_eq!((r.0.clone(), next), (vec![0, 1, 2], 3));
        let rep = t.finish().unwrap();
        assert_eq!(rep.cycles, 3);
    }

    #[test]
    fn run_zero_cycles_is_noop() {
        let mut r = Recorder(Vec::new());
        assert_eq!(run_cycles(&mut r, 3, 0), 3);
        assert!(r.0.is_empty());
    }

    #[test]
    fn divider_period_one_always_active() {
        let d = ClockDivider::new(1);
        assert!((0..10).all(|t| d.active(t)));
    }

    #[test]
    fn divider_counts_cycles() {
        let d = ClockDivider::new(2);
        assert_eq!(d.cycles_elapsed(0), 0);
        assert_eq!(d.cycles_elapsed(3), 1);
        assert_eq!(d.cycles_elapsed(4), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        ClockDivider::new(0);
    }
}
