//! Progress watchdog for detecting simulation stalls.
//!
//! Wormhole-switched networks with finite buffers can, in pathological
//! configurations, deadlock. Rather than spin forever, the network
//! models report per-cycle activity to a [`Watchdog`], which raises a
//! [`StallError`] when nothing has moved for a configurable horizon
//! while work is still in flight.

use std::error::Error;
use std::fmt;

use ringmesh_snap::{SnapError, SnapReader, SnapWriter, SnapshotState};

use crate::SimTime;

/// Error raised when the simulation makes no progress for the watchdog
/// horizon while packets are still in flight — almost certainly a
/// buffer/flow-control deadlock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallError {
    /// Cycle at which the stall was detected.
    pub detected_at: SimTime,
    /// Cycle of the last observed progress.
    pub last_progress: SimTime,
    /// Number of packets in flight at detection time.
    pub in_flight: u64,
}

impl fmt::Display for StallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no network progress since cycle {} (detected at cycle {}, {} packets in flight) — probable deadlock",
            self.last_progress, self.detected_at, self.in_flight
        )
    }
}

impl Error for StallError {}

/// Tracks forward progress and detects deadlock-like stalls.
///
/// # Example
///
/// ```
/// use ringmesh_engine::Watchdog;
///
/// let mut dog = Watchdog::new(100);
/// dog.observe(0, 5, 3); // 5 flit moves, 3 packets in flight
/// assert!(dog.check(50).is_ok());
/// dog.observe(60, 0, 3); // still in flight, nothing moved
/// assert!(dog.check(161).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct Watchdog {
    horizon: SimTime,
    last_progress: SimTime,
    in_flight: u64,
}

impl Watchdog {
    /// Creates a watchdog that trips after `horizon` cycles without
    /// progress. A horizon of a few thousand cycles is far beyond any
    /// legitimate wormhole stall at the system sizes studied here.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn new(horizon: SimTime) -> Self {
        assert!(horizon > 0, "watchdog horizon must be positive");
        Watchdog {
            horizon,
            last_progress: 0,
            in_flight: 0,
        }
    }

    /// Records one cycle's activity: how many flits moved and how many
    /// packets remain in flight. Any movement — or an empty network —
    /// counts as progress.
    pub fn observe(&mut self, now: SimTime, flits_moved: u64, in_flight: u64) {
        self.in_flight = in_flight;
        if flits_moved > 0 || in_flight == 0 {
            self.last_progress = now;
        }
    }

    /// Checks for a stall at time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`StallError`] if more than the horizon has elapsed since
    /// the last progress while packets are in flight.
    pub fn check(&self, now: SimTime) -> Result<(), StallError> {
        if self.in_flight > 0 && now.saturating_sub(self.last_progress) > self.horizon {
            Err(StallError {
                detected_at: now,
                last_progress: self.last_progress,
                in_flight: self.in_flight,
            })
        } else {
            Ok(())
        }
    }

    /// Cycle of the most recent observed progress.
    pub fn last_progress(&self) -> SimTime {
        self.last_progress
    }
}

impl SnapshotState for Watchdog {
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.horizon);
        w.u64(self.last_progress);
        w.u64(self.in_flight);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let horizon = r.u64()?;
        if horizon != self.horizon {
            return Err(SnapError::Mismatch(format!(
                "watchdog horizon {horizon}, expected {}",
                self.horizon
            )));
        }
        self.last_progress = r.u64()?;
        self.in_flight = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_empty_network_is_fine() {
        let mut dog = Watchdog::new(10);
        dog.observe(0, 0, 0);
        assert!(dog.check(1_000_000).is_ok());
    }

    #[test]
    fn movement_resets_horizon() {
        let mut dog = Watchdog::new(10);
        dog.observe(5, 1, 4);
        dog.observe(14, 1, 4);
        assert!(dog.check(24).is_ok());
        assert!(dog.check(25).is_err());
    }

    #[test]
    fn stall_reports_context() {
        let mut dog = Watchdog::new(10);
        dog.observe(3, 2, 7);
        dog.observe(5, 0, 7);
        let err = dog.check(20).unwrap_err();
        assert_eq!(err.last_progress, 3);
        assert_eq!(err.detected_at, 20);
        assert_eq!(err.in_flight, 7);
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_horizon_rejected() {
        Watchdog::new(0);
    }
}
