//! `smpl`-style facilities: serially reusable resources with queueing.
//!
//! A facility models a resource with one or more servers (a memory bank,
//! a bus, a port). Requests either seize a free server immediately or
//! join a FIFO queue ordered by priority. The facility tracks busy time
//! so utilization can be reported the way `smpl` did.

use std::collections::VecDeque;

use crate::SimTime;

/// Outcome of a [`Facility::request`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// A server was free; the request is now in service.
    Granted,
    /// All servers busy; the request was enqueued at the given queue
    /// position (0 = head).
    Queued(usize),
}

/// Cumulative statistics for a facility.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FacilityStats {
    /// Total server-busy time accumulated (summed over servers).
    pub busy_time: u64,
    /// Number of requests granted service (immediately or after
    /// queueing).
    pub completed: u64,
    /// Number of requests that had to queue.
    pub queued: u64,
}

/// A serially-reusable resource with `servers` servers and a
/// priority-ordered FIFO queue, in the style of `smpl`'s `facility`.
///
/// Time does not advance inside the facility; the caller supplies the
/// current simulation time on each state-changing call so busy time can
/// be integrated.
///
/// # Example
///
/// ```
/// use ringmesh_engine::{Facility, RequestOutcome};
///
/// let mut mem = Facility::new("memory", 1);
/// assert_eq!(mem.request(0, 17, 0), RequestOutcome::Granted);
/// assert_eq!(mem.request(0, 18, 0), RequestOutcome::Queued(0));
/// // Token 17 finishes at t=10; 18 enters service.
/// assert_eq!(mem.release(10), Some(18));
/// assert_eq!(mem.release(20), None);
/// assert!((mem.utilization(20) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct Facility {
    name: String,
    servers: u32,
    busy: u32,
    queue: VecDeque<(u64 /* token */, u8 /* priority */)>,
    last_change: SimTime,
    stats: FacilityStats,
}

impl Facility {
    /// Creates a facility with the given display `name` and number of
    /// `servers`.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(name: impl Into<String>, servers: u32) -> Self {
        assert!(servers > 0, "facility must have at least one server");
        Facility {
            name: name.into(),
            servers,
            busy: 0,
            queue: VecDeque::new(),
            last_change: 0,
            stats: FacilityStats::default(),
        }
    }

    /// The facility's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of servers currently in service.
    pub fn busy_servers(&self) -> u32 {
        self.busy
    }

    /// Number of requests waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Requests service for `token` at time `now` with the given
    /// `priority` (higher wins; equal priorities keep FIFO order).
    pub fn request(&mut self, now: SimTime, token: u64, priority: u8) -> RequestOutcome {
        self.integrate(now);
        if self.busy < self.servers {
            self.busy += 1;
            self.stats.completed += 1;
            RequestOutcome::Granted
        } else {
            self.stats.queued += 1;
            // Insert after the last entry with priority >= ours to keep
            // FIFO order within a priority class.
            let pos = self
                .queue
                .iter()
                .rposition(|&(_, p)| p >= priority)
                .map_or(0, |i| i + 1);
            self.queue.insert(pos, (token, priority));
            RequestOutcome::Queued(pos)
        }
    }

    /// Releases one server at time `now`. If a request was queued, it
    /// enters service immediately and its token is returned.
    ///
    /// # Panics
    ///
    /// Panics if no server is busy.
    pub fn release(&mut self, now: SimTime) -> Option<u64> {
        assert!(self.busy > 0, "release on idle facility {}", self.name);
        self.integrate(now);
        match self.queue.pop_front() {
            Some((token, _)) => {
                // Server stays busy, now serving the dequeued request.
                self.stats.completed += 1;
                Some(token)
            }
            None => {
                self.busy -= 1;
                None
            }
        }
    }

    /// Fraction of server capacity used over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == 0 {
            return 0.0;
        }
        let pending = u64::from(self.busy) * (now - self.last_change);
        (self.stats.busy_time + pending) as f64 / (now * u64::from(self.servers)) as f64
    }

    /// Snapshot of cumulative statistics (busy time integrated up to the
    /// last state change).
    pub fn stats(&self) -> FacilityStats {
        self.stats
    }

    fn integrate(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_change, "time went backwards");
        self.stats.busy_time += u64::from(self.busy) * (now - self.last_change);
        self.last_change = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_until_full_then_queues() {
        let mut f = Facility::new("bus", 2);
        assert_eq!(f.request(0, 1, 0), RequestOutcome::Granted);
        assert_eq!(f.request(0, 2, 0), RequestOutcome::Granted);
        assert_eq!(f.request(0, 3, 0), RequestOutcome::Queued(0));
        assert_eq!(f.request(0, 4, 0), RequestOutcome::Queued(1));
        assert_eq!(f.busy_servers(), 2);
        assert_eq!(f.queue_len(), 2);
    }

    #[test]
    fn release_serves_queue_fifo() {
        let mut f = Facility::new("bus", 1);
        f.request(0, 1, 0);
        f.request(0, 2, 0);
        f.request(0, 3, 0);
        assert_eq!(f.release(5), Some(2));
        assert_eq!(f.release(9), Some(3));
        assert_eq!(f.release(12), None);
        assert_eq!(f.busy_servers(), 0);
    }

    #[test]
    fn priority_jumps_queue_but_not_service() {
        let mut f = Facility::new("bus", 1);
        f.request(0, 1, 0);
        f.request(0, 2, 0); // low prio, queued first
        f.request(0, 3, 5); // high prio, jumps ahead of 2
        f.request(0, 4, 5); // high prio, FIFO after 3
        assert_eq!(f.release(1), Some(3));
        assert_eq!(f.release(2), Some(4));
        assert_eq!(f.release(3), Some(2));
    }

    #[test]
    fn utilization_integrates_busy_time() {
        let mut f = Facility::new("mem", 1);
        f.request(0, 1, 0);
        f.release(10); // busy [0,10)
        assert!((f.utilization(20) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn utilization_counts_in_flight_service() {
        let mut f = Facility::new("mem", 2);
        f.request(0, 1, 0); // one of two servers busy forever
        assert!((f.utilization(10) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "release on idle")]
    fn release_idle_panics() {
        let mut f = Facility::new("mem", 1);
        f.release(0);
    }

    #[test]
    fn stats_count_completed_and_queued() {
        let mut f = Facility::new("mem", 1);
        f.request(0, 1, 0);
        f.request(0, 2, 0);
        f.release(4);
        let s = f.stats();
        assert_eq!(s.completed, 2);
        assert_eq!(s.queued, 1);
        assert_eq!(s.busy_time, 4);
    }
}
