//! Simulation substrate for the `ringmesh` interconnect simulator.
//!
//! The original study (Ravindran & Stumm, HPCA 1997) built its
//! register-transfer-level simulator on MacDougall's `smpl` simulation
//! library. This crate is the Rust equivalent of that substrate. It
//! provides:
//!
//! * [`EventCalendar`] — a deterministic discrete-event calendar with
//!   FIFO tie-breaking, the heart of any `smpl`-style simulation.
//! * [`Facility`] — an `smpl`-style single- or multi-server resource
//!   with FIFO/priority queueing and utilization accounting.
//! * [`SimRng`] — a seedable, splittable random-number source with the
//!   variate generators the workload model needs (uniform, Bernoulli,
//!   exponential, geometric).
//! * [`ClockedSystem`] and [`run_cycles`] — the cycle-synchronous
//!   execution discipline used by the flit-level network models, where
//!   every component is evaluated once per clock with *registered*
//!   (previous-cycle) flow-control state.
//! * [`Watchdog`] — a progress monitor that converts a hung simulation
//!   (e.g. an undetected wormhole deadlock) into a hard error instead of
//!   an infinite loop.
//! * [`WorkerPool`] — an order-preserving fork-join pool on scoped
//!   threads, used to fan independent sweep points across cores while
//!   keeping results byte-identical to a serial run.
//! * [`KernelPool`] — a persistent spin-barrier pool that parallelizes
//!   the *inside* of a simulated cycle (sharded node stepping with a
//!   deterministic compute/commit split), byte-identical at any thread
//!   count.
//! * [`StopFlag`] / [`AdmissionGate`] — cooperative shutdown and
//!   load-shedding admission control for services built on the kernel.
//! * [`Lease`] / [`Backoff`] — time-bounded work claims and capped
//!   exponential retry delays for distributed dispatch.
//!
//! The networks themselves (hierarchical rings, 2-D meshes) live in the
//! `ringmesh-ring` and `ringmesh-mesh` crates; workload generation lives
//! in `ringmesh-workload`.
//!
//! # Example
//!
//! ```
//! use ringmesh_engine::EventCalendar;
//!
//! let mut cal: EventCalendar<&'static str> = EventCalendar::new();
//! cal.schedule(10, "timer-a");
//! cal.schedule(5, "timer-b");
//! let (t, ev) = cal.next().unwrap();
//! assert_eq!((t, ev), (5, "timer-b"));
//! let (t, ev) = cal.next().unwrap();
//! assert_eq!((t, ev), (10, "timer-a"));
//! ```

// `deny` rather than `forbid`: the crate is safe code except for the
// audited lifetime-erasure in `kernel.rs`, which opts in locally.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod calendar;
mod clock;
mod facility;
mod kernel;
mod lease;
mod pool;
mod rng;
mod watchdog;

pub use admission::{AdmissionGate, Permit, StopFlag};
pub use calendar::EventCalendar;
pub use clock::{run_cycles, run_cycles_traced, ClockDivider, ClockedSystem};
pub use facility::{Facility, FacilityStats, RequestOutcome};
pub use kernel::{
    configured_kernel_threads, effective_kernel_threads, set_active_sweep_width,
    set_kernel_threads, KernelPool,
};
pub use lease::{Backoff, Lease};
pub use pool::{configured_threads, WorkerPool};
pub use rng::SimRng;
pub use watchdog::{StallError, Watchdog};

/// Simulation time, measured in clock cycles (or, for multi-rate
/// systems, in the finest-grained sub-cycle ticks).
pub type SimTime = u64;
