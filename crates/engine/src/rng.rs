//! Deterministic, splittable random-number source.
//!
//! Every stochastic element of the simulation (per-processor reference
//! streams, read/write coin flips) draws from a [`SimRng`] derived from
//! a single experiment seed, so whole experiments replay bit-for-bit.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna),
//! seeded through splitmix64 — the standard seeding recipe — so the
//! simulator carries no external RNG dependency.

use ringmesh_snap::{SnapError, SnapReader, SnapWriter, Snapshot};

/// Mixes a 64-bit value through the `splitmix64` finalizer; used to
/// derive well-separated child seeds from `(seed, stream-id)` pairs and
/// to expand a 64-bit seed into the generator's 256-bit state.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable random-number generator with the variates the M-MRP
/// workload model needs.
///
/// Wraps a non-cryptographic xoshiro256++ core; use [`SimRng::stream`]
/// to derive independent per-component generators from one experiment
/// seed.
///
/// # Example
///
/// ```
/// use ringmesh_engine::SimRng;
///
/// let mut a = SimRng::from_seed(42).stream(7);
/// let mut b = SimRng::from_seed(42).stream(7);
/// assert_eq!(a.uniform_usize(100), b.uniform_usize(100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        // Expand the seed through a splitmix64 chain; the all-zero
        // state (unreachable from splitmix64 output in practice) would
        // be the only invalid one.
        let mut s = splitmix64(seed);
        let state = std::array::from_fn(|_| {
            s = splitmix64(s);
            s
        });
        SimRng { seed, state }
    }

    /// Derives an independent generator for stream `id`.
    ///
    /// Streams derived from the same `(seed, id)` pair are identical;
    /// different ids give statistically independent sequences. Derivation
    /// depends only on the root seed, not on how many values have been
    /// drawn from `self`.
    pub fn stream(&self, id: u64) -> SimRng {
        SimRng::from_seed(splitmix64(
            self.seed ^ splitmix64(id.wrapping_add(0xA5A5_5A5A)),
        ))
    }

    /// The root seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The xoshiro256++ step: full-period 64-bit output.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn uniform_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "uniform_usize bound must be positive");
        // Lemire's multiply-shift reduction: bias is at most
        // bound / 2^64, far below anything a simulation could observe.
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 top bits — the standard uniform-double recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]` — safe to feed to `ln()`.
    fn uniform_open0(&mut self) -> f64 {
        1.0 - self.uniform_f64()
    }

    /// Bernoulli trial: true with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        self.uniform_f64() < p
    }

    /// Exponentially distributed value with the given `mean`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * self.uniform_open0().ln()
    }

    /// Geometrically distributed trial count (>= 1) with success
    /// probability `p`: the number of Bernoulli trials up to and
    /// including the first success.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "probability {p} outside (0,1]");
        if p >= 1.0 {
            return 1;
        }
        let u = self.uniform_open0();
        (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
    }
}

impl Snapshot for SimRng {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.seed);
        for &s in &self.state {
            w.u64(s);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let seed = r.u64()?;
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = r.u64()?;
        }
        if state == [0; 4] {
            return Err(SnapError::Corrupt("all-zero xoshiro state".into()));
        }
        Ok(SimRng { seed, state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_resumes_mid_stream() {
        let mut rng = SimRng::from_seed(77);
        for _ in 0..13 {
            rng.next_u64();
        }
        let mut w = SnapWriter::new();
        rng.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = SimRng::load(&mut SnapReader::new(&bytes)).unwrap();
        for _ in 0..32 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
        assert_eq!(rng.seed(), restored.seed());
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(1);
        for _ in 0..100 {
            assert_eq!(a.uniform_usize(1000), b.uniform_usize(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..64)
            .filter(|_| a.uniform_usize(1 << 30) == b.uniform_usize(1 << 30))
            .count();
        assert!(same < 4, "sequences should be essentially disjoint");
    }

    #[test]
    fn streams_are_independent_of_draw_position() {
        let root = SimRng::from_seed(9);
        let mut early = root.stream(3);
        let mut consumed = root.clone();
        for _ in 0..10 {
            consumed.uniform_f64();
        }
        let mut late = consumed.stream(3);
        for _ in 0..16 {
            assert_eq!(early.uniform_usize(1 << 20), late.uniform_usize(1 << 20));
        }
    }

    #[test]
    fn bernoulli_mean_close_to_p() {
        let mut r = SimRng::from_seed(7);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.7)).count();
        let mean = hits as f64 / n as f64;
        assert!((mean - 0.7).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::from_seed(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(25.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 25.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn geometric_mean_close() {
        let mut r = SimRng::from_seed(13);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.geometric(0.04)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 25.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn uniform_usize_stays_in_bounds() {
        let mut r = SimRng::from_seed(5);
        assert!((0..10_000).all(|_| r.uniform_usize(7) < 7));
    }

    #[test]
    fn geometric_with_p_one_is_one() {
        let mut r = SimRng::from_seed(17);
        assert_eq!(r.geometric(1.0), 1);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = SimRng::from_seed(21);
        assert!((0..10_000)
            .map(|_| r.uniform_f64())
            .all(|v| (0.0..1.0).contains(&v)));
    }
}
