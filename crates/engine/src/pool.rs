//! A minimal order-preserving worker pool on scoped threads.
//!
//! Parameter sweeps simulate dozens of independent `(topology, size,
//! load)` points; each point owns its own seeded RNG and calendar, so
//! the points can run on any thread in any order without changing a
//! single result bit. [`WorkerPool::map`] exploits that: it fans the
//! items of a `Vec` out across a fixed set of scoped worker threads
//! (claimed from a shared atomic cursor) and collects the results *in
//! input order*, so the output is byte-identical to a serial loop.
//!
//! The pool is hand-rolled on [`std::thread::scope`] — the workspace
//! vendors its only external crate (`criterion`) and takes no new
//! dependencies. A pool of one thread (or a single-item input) runs
//! inline on the caller's thread with zero synchronization.
//!
//! The default worker count comes from the `RINGMESH_THREADS`
//! environment variable, read once per process (see
//! [`configured_threads`]); unset, it falls back to
//! [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! use ringmesh_engine::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let squares = pool.map(vec![1u64, 2, 3, 4], |_, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The number of worker threads to use by default, parsed once per
/// process: the `RINGMESH_THREADS` environment variable if set to a
/// positive integer, else [`std::thread::available_parallelism`]
/// (falling back to 1 when even that is unavailable).
pub fn configured_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let from_env = std::env::var("RINGMESH_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1);
        from_env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    })
}

/// An order-preserving fork-join pool over a fixed number of threads.
///
/// See the [module docs](self) for the design; construct one with an
/// explicit thread count ([`WorkerPool::new`], e.g. in determinism
/// tests comparing thread counts within one process) or from the
/// environment default ([`WorkerPool::from_env`]).
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool of `threads` workers; zero is clamped to one (inline
    /// serial execution).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized by [`configured_threads`] (`RINGMESH_THREADS` or
    /// the machine's available parallelism).
    pub fn from_env() -> Self {
        WorkerPool::new(configured_threads())
    }

    /// The number of worker threads this pool runs.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item and returns the results in input
    /// order. `f` receives the item's index alongside the item.
    ///
    /// Items are claimed dynamically (an atomic cursor), so an
    /// expensive item does not serialize the cheap ones behind it; the
    /// collected order is the input order regardless of which worker
    /// finished first. With one thread (or fewer than two items) the
    /// whole map runs inline on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics (after all workers have joined) if `f` panicked on any
    /// item.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        // Safe shared state only (`forbid(unsafe_code)`): each index is
        // claimed exactly once via the cursor, so every Mutex below is
        // uncontended — it exists to satisfy the borrow checker, not to
        // serialize work.
        let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("poisoned work slot")
                        .take()
                        .expect("work index claimed twice");
                    let r = f(i, item);
                    *results[i].lock().expect("poisoned result slot") = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("poisoned result slot")
                    .expect("worker left a result slot empty")
            })
            .collect()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let pool = WorkerPool::new(4);
        // Make early items slow so completion order differs from input
        // order; the collected order must still be the input order.
        let out = pool.map((0..64u64).collect(), |i, x| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * 10
        });
        assert_eq!(out, (0..64u64).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let work = |_, x: u64| (x as f64).sqrt() * 1e9;
        let serial = WorkerPool::new(1).map((0..100).collect(), work);
        let parallel = WorkerPool::new(4).map((0..100).collect(), work);
        let bits = |v: &[f64]| v.iter().map(|y| y.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&serial), bits(&parallel));
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.map(Vec::<u32>::new(), |_, x| x), Vec::<u32>::new());
        assert_eq!(pool.map(vec![7u32], |i, x| x + i as u32), vec![7]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(vec![1, 2, 3], |_, x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn index_matches_item_position() {
        let pool = WorkerPool::new(3);
        let out = pool.map(vec![10usize, 11, 12, 13], |i, x| (i, x));
        for (i, &(idx, x)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(x, 10 + i);
        }
    }
}
