//! A minimal order-preserving worker pool on scoped threads.
//!
//! Parameter sweeps simulate dozens of independent `(topology, size,
//! load)` points; each point owns its own seeded RNG and calendar, so
//! the points can run on any thread in any order without changing a
//! single result bit. [`WorkerPool::map`] exploits that: it fans the
//! items of a `Vec` out across a fixed set of scoped worker threads
//! (claimed from a shared atomic cursor) and collects the results *in
//! input order*, so the output is byte-identical to a serial loop.
//!
//! The pool is hand-rolled on [`std::thread::scope`] — the workspace
//! vendors its only external crate (`criterion`) and takes no new
//! dependencies. A pool of one thread (or a single-item input) runs
//! inline on the caller's thread with zero synchronization.
//!
//! The default worker count comes from the `RINGMESH_THREADS`
//! environment variable, read once per process (see
//! [`configured_threads`]); unset, it falls back to
//! [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! use ringmesh_engine::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let squares = pool.map(vec![1u64, 2, 3, 4], |_, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, OnceLock};

use crate::kernel::set_active_sweep_width;

/// Marks a sweep of `width` workers as active for the lifetime of the
/// guard, so the kernel-thread oversubscription clamp (see
/// [`crate::effective_kernel_threads`]) can account for it — including
/// on the panic path.
struct SweepWidthGuard;

impl SweepWidthGuard {
    fn activate(width: usize) -> Self {
        set_active_sweep_width(width);
        SweepWidthGuard
    }
}

impl Drop for SweepWidthGuard {
    fn drop(&mut self) {
        set_active_sweep_width(0);
    }
}

/// The number of worker threads to use by default, parsed once per
/// process: the `RINGMESH_THREADS` environment variable if set to a
/// positive integer, else [`std::thread::available_parallelism`]
/// (falling back to 1 when even that is unavailable).
pub fn configured_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let from_env = std::env::var("RINGMESH_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1);
        from_env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    })
}

/// An order-preserving fork-join pool over a fixed number of threads.
///
/// See the [module docs](self) for the design; construct one with an
/// explicit thread count ([`WorkerPool::new`], e.g. in determinism
/// tests comparing thread counts within one process) or from the
/// environment default ([`WorkerPool::from_env`]).
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool of `threads` workers; zero is clamped to one (inline
    /// serial execution).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized by [`configured_threads`] (`RINGMESH_THREADS` or
    /// the machine's available parallelism).
    pub fn from_env() -> Self {
        WorkerPool::new(configured_threads())
    }

    /// The number of worker threads this pool runs.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item and returns the results in input
    /// order. `f` receives the item's index alongside the item.
    ///
    /// Items are claimed dynamically (an atomic cursor), so an
    /// expensive item does not serialize the cheap ones behind it; the
    /// collected order is the input order regardless of which worker
    /// finished first. With one thread (or fewer than two items) the
    /// whole map runs inline on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics (after all workers have joined) if `f` panicked on any
    /// item.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        // Safe shared state only: each index is claimed exactly once
        // via the cursor, so every Mutex below is uncontended — it
        // exists to satisfy the borrow checker, not to serialize work.
        let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let _sweep = SweepWidthGuard::activate(workers);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("poisoned work slot")
                        .take()
                        .expect("work index claimed twice");
                    let r = f(i, item);
                    *results[i].lock().expect("poisoned result slot") = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("poisoned result slot")
                    .expect("worker left a result slot empty")
            })
            .collect()
    }
    /// [`map`](Self::map) with live completion streaming: jobs may
    /// emit typed progress events while running (via the emitter
    /// passed to `f`), and the caller observes every event plus each
    /// job's completion *as it happens*, from the calling thread.
    ///
    /// This is the job-server entry point: a batch of sweep points
    /// fans out across the workers while per-job status streams back
    /// to the protocol connection. Events from concurrently running
    /// jobs interleave in completion order (which varies run to run);
    /// the *returned* results are in input order and bit-identical at
    /// any thread count, exactly like [`map`](Self::map).
    ///
    /// `on_progress` receives `(job index, event)`; `on_done` receives
    /// `(job index, &result)` once per job. With one worker (or fewer
    /// than two items) everything runs inline in input order.
    ///
    /// # Panics
    ///
    /// Panics (after all workers have joined) if `f` panicked on any
    /// item.
    pub fn run_jobs<T, R, E, F>(
        &self,
        items: Vec<T>,
        f: F,
        mut on_progress: impl FnMut(usize, E),
        mut on_done: impl FnMut(usize, &R),
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        E: Send,
        F: Fn(usize, T, &mut dyn FnMut(E)) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    let r = f(i, item, &mut |e| on_progress(i, e));
                    on_done(i, &r);
                    r
                })
                .collect();
        }
        enum Msg<E, R> {
            Progress(usize, E),
            Done(usize, R),
        }
        let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let _sweep = SweepWidthGuard::activate(workers);
        std::thread::scope(|s| {
            let (tx, rx) = mpsc::channel::<Msg<E, R>>();
            let (f, work, cursor) = (&f, &work, &cursor);
            for _ in 0..workers {
                let tx = tx.clone();
                s.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("poisoned work slot")
                        .take()
                        .expect("work index claimed twice");
                    let mut emit = |e| {
                        let _ = tx.send(Msg::Progress(i, e));
                    };
                    let r = f(i, item, &mut emit);
                    let _ = tx.send(Msg::Done(i, r));
                });
            }
            // The caller's thread is the event loop: it relays progress
            // and completion while the workers run. All senders live in
            // this scope, so dropping ours and counting completions
            // terminates cleanly even if a worker panicked (the scope
            // re-raises the panic after the join).
            drop(tx);
            let mut done = 0;
            while done < n {
                match rx.recv() {
                    Ok(Msg::Progress(i, e)) => on_progress(i, e),
                    Ok(Msg::Done(i, r)) => {
                        results[i] = Some(r);
                        on_done(i, results[i].as_ref().expect("just stored"));
                        done += 1;
                    }
                    Err(_) => break, // a worker panicked; the scope will re-raise
                }
            }
        });
        results
            .into_iter()
            .map(|slot| slot.expect("worker left a result slot empty"))
            .collect()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let pool = WorkerPool::new(4);
        // Make early items slow so completion order differs from input
        // order; the collected order must still be the input order.
        let out = pool.map((0..64u64).collect(), |i, x| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * 10
        });
        assert_eq!(out, (0..64u64).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let work = |_, x: u64| (x as f64).sqrt() * 1e9;
        let serial = WorkerPool::new(1).map((0..100).collect(), work);
        let parallel = WorkerPool::new(4).map((0..100).collect(), work);
        let bits = |v: &[f64]| v.iter().map(|y| y.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&serial), bits(&parallel));
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.map(Vec::<u32>::new(), |_, x| x), Vec::<u32>::new());
        assert_eq!(pool.map(vec![7u32], |i, x| x + i as u32), vec![7]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(vec![1, 2, 3], |_, x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn run_jobs_streams_events_and_preserves_order() {
        for threads in [1, 4] {
            let pool = WorkerPool::new(threads);
            let mut progress = Vec::new();
            let mut done = Vec::new();
            let out = pool.run_jobs(
                (0..16u64).collect(),
                |i, x, emit| {
                    emit(x * 2);
                    emit(x * 2 + 1);
                    (i as u64) * 100 + x
                },
                |i, e| progress.push((i, e)),
                |i, r| done.push((i, *r)),
            );
            // Results: input order, same at any thread count.
            assert_eq!(out, (0..16u64).map(|x| x * 101).collect::<Vec<_>>());
            // Every job emitted both events and completed exactly once.
            assert_eq!(progress.len(), 32, "threads={threads}");
            assert_eq!(done.len(), 16);
            let mut done_ids: Vec<usize> = done.iter().map(|&(i, _)| i).collect();
            done_ids.sort_unstable();
            assert_eq!(done_ids, (0..16).collect::<Vec<_>>());
            for &(i, r) in &done {
                assert_eq!(r, (i as u64) * 101);
            }
            // Per-job progress events arrive in emit order.
            for job in 0..16u64 {
                let evs: Vec<u64> = progress
                    .iter()
                    .filter(|&&(i, _)| i as u64 == job)
                    .map(|&(_, e)| e)
                    .collect();
                assert_eq!(evs, vec![job * 2, job * 2 + 1]);
            }
        }
    }

    #[test]
    fn index_matches_item_position() {
        let pool = WorkerPool::new(3);
        let out = pool.map(vec![10usize, 11, 12, 13], |i, x| (i, x));
        for (i, &(idx, x)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(x, 10 + i);
        }
    }
}
