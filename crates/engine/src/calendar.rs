//! Deterministic discrete-event calendar.
//!
//! This is the Rust analogue of the event list at the core of
//! MacDougall's `smpl` library: events are scheduled at absolute or
//! relative times and dequeued in time order, with ties broken in FIFO
//! (schedule) order so that runs are exactly reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A pending event: ordered by time, then by schedule sequence number.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event (and,
        // among equals, the earliest-scheduled) surfaces first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event calendar with deterministic FIFO tie-breaking.
///
/// The calendar tracks the current simulation time, which advances to
/// the timestamp of each event as it is dequeued with [`next`].
///
/// # Example
///
/// ```
/// use ringmesh_engine::EventCalendar;
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { MemoryReady(u32) }
///
/// let mut cal = EventCalendar::new();
/// cal.schedule(20, Ev::MemoryReady(7));
/// assert_eq!(cal.next(), Some((20, Ev::MemoryReady(7))));
/// assert_eq!(cal.now(), 20);
/// ```
///
/// [`next`]: EventCalendar::next
#[derive(Default)]
pub struct EventCalendar<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> EventCalendar<E> {
    /// Creates an empty calendar with the clock at time zero.
    pub fn new() -> Self {
        EventCalendar {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current simulation time: the timestamp of the most recently
    /// dequeued event (zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` time units from now.
    pub fn schedule(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (before [`now`](Self::now)) —
    /// scheduling into the past is always a model bug.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "scheduled event at t={time} before current time t={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Returns `None` when the calendar is empty.
    #[allow(clippy::should_implement_trait)] // not an Iterator: advances the clock
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let sched = self.heap.pop()?;
        debug_assert!(sched.time >= self.now);
        self.now = sched.time;
        Some((sched.time, sched.event))
    }

    /// Timestamp of the next pending event, if any, without dequeuing.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Removes and returns the next event only if it fires at or before
    /// `deadline`. Leaves the clock untouched otherwise.
    pub fn next_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.next(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventCalendar<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventCalendar")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dequeues_in_time_order() {
        let mut cal = EventCalendar::new();
        cal.schedule(30, "c");
        cal.schedule(10, "a");
        cal.schedule(20, "b");
        assert_eq!(cal.next(), Some((10, "a")));
        assert_eq!(cal.next(), Some((20, "b")));
        assert_eq!(cal.next(), Some((30, "c")));
        assert_eq!(cal.next(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = EventCalendar::new();
        for i in 0..100 {
            cal.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(cal.next(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_dequeue() {
        let mut cal = EventCalendar::new();
        cal.schedule(7, ());
        assert_eq!(cal.now(), 0);
        cal.next();
        assert_eq!(cal.now(), 7);
        // Relative scheduling is now relative to t=7.
        cal.schedule(3, ());
        assert_eq!(cal.next(), Some((10, ())));
    }

    #[test]
    fn next_before_respects_deadline() {
        let mut cal = EventCalendar::new();
        cal.schedule(15, "later");
        assert_eq!(cal.next_before(14), None);
        assert_eq!(cal.now(), 0, "clock must not advance on a miss");
        assert_eq!(cal.next_before(15), Some((15, "later")));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_past_panics() {
        let mut cal = EventCalendar::new();
        cal.schedule(10, ());
        cal.next();
        cal.schedule_at(5, ());
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut cal = EventCalendar::new();
        assert!(cal.is_empty());
        cal.schedule(1, ());
        cal.schedule(2, ());
        assert_eq!(cal.len(), 2);
        cal.next();
        assert_eq!(cal.len(), 1);
        assert!(!cal.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_dequeue_is_stable() {
        let mut cal = EventCalendar::new();
        cal.schedule(10, 1u32);
        cal.schedule(10, 2);
        assert_eq!(cal.next(), Some((10, 1)));
        cal.schedule_at(10, 3); // same time, scheduled later -> after 2
        assert_eq!(cal.next(), Some((10, 2)));
        assert_eq!(cal.next(), Some((10, 3)));
    }
}
