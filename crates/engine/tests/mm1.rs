//! An `smpl`-style discrete-event simulation built from the engine's
//! pieces alone (calendar + facility + RNG), validated against M/M/1
//! queueing theory — the same kind of check MacDougall's book uses to
//! validate `smpl` itself.

use ringmesh_engine::{EventCalendar, Facility, RequestOutcome, SimRng};

#[derive(Debug)]
enum Event {
    Arrival(u64),
    Departure(u64),
}

/// Simulates an M/M/1 queue with arrival rate `lambda` and service rate
/// `mu`, returning (mean time in system, server utilization).
fn simulate_mm1(lambda: f64, mu: f64, customers: u64, seed: u64) -> (f64, f64) {
    let mut cal = EventCalendar::new();
    let mut server = Facility::new("server", 1);
    let mut rng = SimRng::from_seed(seed);
    let mut arrivals: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut total_time = 0.0;
    let mut completed = 0u64;
    let mut next_id = 0u64;

    cal.schedule(
        rng.exponential(1.0 / lambda).ceil() as u64,
        Event::Arrival(0),
    );
    while completed < customers {
        let Some((now, event)) = cal.next() else {
            break;
        };
        match event {
            Event::Arrival(id) => {
                arrivals.insert(id, now);
                if server.request(now, id, 0) == RequestOutcome::Granted {
                    cal.schedule(
                        rng.exponential(1.0 / mu).ceil().max(1.0) as u64,
                        Event::Departure(id),
                    );
                }
                next_id += 1;
                cal.schedule(
                    rng.exponential(1.0 / lambda).ceil().max(1.0) as u64,
                    Event::Arrival(next_id),
                );
            }
            Event::Departure(id) => {
                let arrived = arrivals.remove(&id).expect("departure without arrival");
                total_time += (now - arrived) as f64;
                completed += 1;
                if let Some(next) = server.release(now) {
                    cal.schedule(
                        rng.exponential(1.0 / mu).ceil().max(1.0) as u64,
                        Event::Departure(next),
                    );
                }
            }
        }
    }
    (total_time / completed as f64, server.utilization(cal.now()))
}

#[test]
fn mm1_time_in_system_matches_theory() {
    // lambda = 0.02, mu = 0.05: rho = 0.4, W = 1/(mu - lambda) = 33.3.
    let (w, rho) = simulate_mm1(0.02, 0.05, 60_000, 42);
    assert!((rho - 0.4).abs() < 0.03, "utilization {rho}");
    // Integer-cycle rounding of the exponential variates adds a small
    // positive bias; allow 10%.
    assert!((w / 33.33 - 1.0).abs() < 0.10, "W = {w}");
}

#[test]
fn mm1_utilization_tracks_load() {
    let (_, rho_light) = simulate_mm1(0.01, 0.05, 30_000, 7);
    let (_, rho_heavy) = simulate_mm1(0.04, 0.05, 30_000, 7);
    assert!((rho_light - 0.2).abs() < 0.03, "{rho_light}");
    assert!((rho_heavy - 0.8).abs() < 0.04, "{rho_heavy}");
}

#[test]
fn mm1_latency_explodes_near_saturation() {
    let (w_moderate, _) = simulate_mm1(0.02, 0.05, 30_000, 3);
    let (w_near_sat, _) = simulate_mm1(0.045, 0.05, 30_000, 3);
    // Theory: 33.3 vs 200 cycles; demand a clear blow-up.
    assert!(
        w_near_sat > 3.0 * w_moderate,
        "{w_moderate} -> {w_near_sat}"
    );
}
