//! Thread-contention stress tests for the serve layer's admission
//! primitives: [`AdmissionGate`] must never over-admit or leak capacity
//! under concurrent claim/release storms, and [`StopFlag`] must never
//! lose a set — every observer eventually sees shutdown, no matter how
//! the set races the reads.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use ringmesh_engine::{AdmissionGate, StopFlag};

/// Many threads hammer one gate; the observed in-flight count must
/// never exceed the limit, and when the dust settles every permit must
/// have been returned (no lost capacity, no phantom holders).
#[test]
fn gate_never_over_admits_under_contention() {
    const THREADS: usize = 16;
    const ROUNDS: usize = 2_000;
    const LIMIT: usize = 4;

    let gate = AdmissionGate::new(LIMIT);
    let admitted = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let peak = AtomicUsize::new(0);
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (gate, admitted, shed, peak, barrier) = (&gate, &admitted, &shed, &peak, &barrier);
            s.spawn(move || {
                barrier.wait(); // maximal contention: everyone starts together
                for round in 0..ROUNDS {
                    match gate.try_enter() {
                        Some(_permit) => {
                            let seen = gate.in_flight();
                            assert!(
                                (1..=LIMIT).contains(&seen),
                                "thread {t} round {round}: in_flight {seen} outside [1, {LIMIT}]"
                            );
                            peak.fetch_max(seen, Ordering::Relaxed);
                            admitted.fetch_add(1, Ordering::Relaxed);
                            // Hold briefly so claims genuinely overlap.
                            if round % 64 == 0 {
                                std::thread::yield_now();
                            }
                        }
                        None => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    assert_eq!(gate.in_flight(), 0, "every permit must be returned");
    assert!(
        admitted.load(Ordering::Relaxed) >= LIMIT as u64,
        "the gate must have admitted work"
    );
    // Full capacity is available again: no capacity was lost to races.
    let refill: Vec<_> = (0..LIMIT).map(|_| gate.try_enter().unwrap()).collect();
    assert!(gate.try_enter().is_none());
    drop(refill);
    assert_eq!(gate.in_flight(), 0);
    let _ = shed;
}

/// Interleaved claim/release across threads with verification that the
/// *sum* of successful admissions is exact: each successful entry is
/// counted once, and capacity returned by a drop is claimable by any
/// other thread (no "lost wakeup" analogue where freed capacity stays
/// invisible).
#[test]
fn released_capacity_is_always_reclaimable() {
    const LIMIT: usize = 2;
    let gate = AdmissionGate::new(LIMIT);
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Churners: grab and immediately release.
        for _ in 0..6 {
            let (gate, stop, total) = (&gate, &stop, &total);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if let Some(p) = gate.try_enter() {
                        total.fetch_add(1, Ordering::Relaxed);
                        drop(p);
                    }
                }
            });
        }
        // Prober: with churners constantly releasing, a bounded retry
        // loop must always reacquire — freed capacity never vanishes.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut reacquired = 0;
        while reacquired < 500 {
            assert!(
                Instant::now() < deadline,
                "released capacity became unclaimable (reacquired {reacquired} times)"
            );
            if let Some(p) = gate.try_enter() {
                reacquired += 1;
                drop(p);
            } else {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(gate.in_flight(), 0);
    assert!(total.load(Ordering::Relaxed) > 0);
}

/// One setter races many readers; every reader must observe the stop
/// within a bounded spin once it is set (a reader that never sees the
/// flag would hang a session thread forever at shutdown).
#[test]
fn stop_flag_set_is_never_lost_across_threads() {
    const READERS: usize = 12;
    let stop = StopFlag::new();
    let observed = AtomicUsize::new(0);
    let barrier = Barrier::new(READERS + 1);

    std::thread::scope(|s| {
        for _ in 0..READERS {
            let flag = stop.clone();
            let (observed, barrier) = (&observed, &barrier);
            s.spawn(move || {
                barrier.wait();
                let deadline = Instant::now() + Duration::from_secs(10);
                while !flag.is_set() {
                    assert!(Instant::now() < deadline, "reader never observed the stop");
                    std::thread::yield_now();
                }
                observed.fetch_add(1, Ordering::SeqCst);
            });
        }
        barrier.wait();
        std::thread::yield_now();
        stop.set();
    });

    assert_eq!(observed.load(Ordering::SeqCst), READERS);
    assert!(stop.is_set(), "a set flag stays set");
}

/// Concurrent setters are idempotent: any number of threads may request
/// shutdown simultaneously and the flag lands set exactly the same way.
#[test]
fn concurrent_sets_are_idempotent() {
    let stop = StopFlag::new();
    std::thread::scope(|s| {
        for _ in 0..8 {
            let flag = stop.clone();
            s.spawn(move || {
                for _ in 0..1_000 {
                    flag.set();
                    assert!(flag.is_set());
                }
            });
        }
    });
    assert!(stop.is_set());
}
