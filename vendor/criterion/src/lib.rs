//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment for this repository is offline, so the real
//! `criterion` cannot be fetched from crates.io. This shim implements
//! the small API surface the `ringmesh-bench` micro-benchmarks use —
//! [`Criterion::bench_function`], [`Bencher::iter`]/
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`] and the
//! `criterion_group!`/`criterion_main!` macros — backed by plain
//! wall-clock timing. Each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints the per-iteration mean,
//! minimum and maximum. It is deliberately simple: no outlier analysis,
//! no HTML reports, but the numbers are honest medians-of-means and the
//! bench targets compile and run unchanged if the real criterion is
//! ever swapped back in.

use std::hint;
use std::time::{Duration, Instant};

/// How per-iteration setup output is batched. The shim runs every
/// regime identically (setup + routine timed per iteration, setup cost
/// excluded), so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; batch many per allocation in real criterion.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// Setup output per iteration.
    PerIteration,
}

/// An opaque timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Timed samples collected so far, as per-iteration durations.
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let n = self.iters_per_sample.max(1);
        let t0 = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.samples.push(t0.elapsed() / n as u32);
    }

    /// Times `routine` over inputs produced by `setup`, excluding the
    /// setup cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let n = self.iters_per_sample.max(1);
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
        }
        self.samples.push(total / n as u32);
    }
}

/// Prevents the compiler from optimizing a value away.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark driver: collects samples and prints a summary line per
/// registered function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark: a warm-up sample, then `sample_size`
    /// timed samples, printing mean/min/max per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        };
        // Warm-up: one untimed run (also primes caches and the
        // allocator the way real criterion's warm-up phase does).
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        if b.samples.is_empty() {
            println!("{name}: no samples (closure never called Bencher::iter*)");
            return self;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{name}: time [{:.3?} .. mean {:.3?} .. {:.3?}] over {} samples",
            min,
            mean,
            max,
            b.samples.len()
        );
        self
    }

    /// Final-report hook; a no-op in the shim.
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro
/// of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_requested_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("shim-self-test", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        // 1 warm-up + 3 samples, one iteration each.
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut setups = 0u32;
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 2,
        };
        b.iter_batched(
            || {
                setups += 1;
            },
            |()| (),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 2);
        assert_eq!(b.samples.len(), 1);
    }
}
