//! Workspace façade for the `ringmesh` simulator suite.
//!
//! This crate exists to host the repository-level `examples/` and
//! `tests/` directories; it simply re-exports the member crates so
//! examples and integration tests can reach every layer through one
//! dependency.
//!
//! * [`ringmesh`] — the top-level simulation framework (start here).
//! * [`ringmesh_engine`] — event calendar, clocked kernel, RNG, watchdog.
//! * [`ringmesh_net`] — flits, packets, buffers, wormhole primitives.
//! * [`ringmesh_ring`] — hierarchical uni-directional ring networks.
//! * [`ringmesh_mesh`] — 2-D bi-directional wormhole meshes.
//! * [`ringmesh_workload`] — the M-MRP synthetic workload.
//! * [`ringmesh_stats`] — batch-means output analysis.

#![forbid(unsafe_code)]

pub use ringmesh;
pub use ringmesh_engine;
pub use ringmesh_mesh;
pub use ringmesh_net;
pub use ringmesh_ring;
pub use ringmesh_stats;
pub use ringmesh_workload;
