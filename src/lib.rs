//! Workspace façade for the `ringmesh` simulator suite.
//!
//! This crate exists to host the repository-level `examples/` and
//! `tests/` directories; it simply re-exports the member crates so
//! examples and integration tests can reach every layer through one
//! dependency.
//!
//! * [`ringmesh`] — the top-level simulation framework (start here).
//! * [`ringmesh_engine`] — event calendar, clocked kernel, RNG, watchdog.
//! * [`ringmesh_net`] — flits, packets, buffers, wormhole primitives.
//! * [`ringmesh_ring`] — hierarchical uni-directional ring networks.
//! * [`ringmesh_mesh`] — 2-D bi-directional wormhole meshes.
//! * [`ringmesh_workload`] — the M-MRP synthetic workload.
//! * [`ringmesh_stats`] — batch-means output analysis.
//! * [`ringmesh_trace`] — cycle-level observability (counters, heatmaps).
//! * [`ringmesh_faults`] — deterministic fault injection and retry.
//! * [`ringmesh_snap`] — binary state-snapshot codec and fingerprints.
//! * [`ringmesh_serve`] — sweep-job server with result cache and
//!   checkpoint/resume.
//!
//! The `ringmesh` CLI binary also lives here (`src/bin/ringmesh.rs`)
//! so it can drive every subsystem, including `ringmesh serve`.

#![forbid(unsafe_code)]

pub use ringmesh;
pub use ringmesh_engine;
pub use ringmesh_faults;
pub use ringmesh_mesh;
pub use ringmesh_net;
pub use ringmesh_ring;
pub use ringmesh_serve;
pub use ringmesh_snap;
pub use ringmesh_stats;
pub use ringmesh_trace;
pub use ringmesh_workload;
