//! `ringmesh` command-line interface: run a single simulation point and
//! print its metrics, without writing any Rust.
//!
//! ```text
//! ringmesh --ring 2:3:4 --cache-line 128B --r 0.2 --t 4
//! ringmesh --mesh 6 --buffers 1flit --cache-line 64B --format csv
//! ringmesh --slotted-ring 3:3:6 --cache-line 64B
//! ringmesh run --topology hybrid:4x4:4 --cache-line 64B
//! ringmesh serve --cache .ringmesh-cache --verify-cache 0.1
//! ```
//!
//! Run `ringmesh --help` for the full flag list. Argument parsing is
//! hand-rolled to keep the dependency set to the crates the simulator
//! itself needs.

use std::io;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use ringmesh::benchrun::{self, BenchOptions};
use ringmesh::{
    run_config, ExitStatus, FaultConfig, FaultPlan, FaultRunReport, NetworkSpec, RetryPolicy,
    RunError, SimParams, System, SystemConfig, TraceConfig,
};
use ringmesh_fleet::{run_worker, FleetOptions, FleetPool, WorkerExit, WorkerOptions};
use ringmesh_net::{BufferRegime, CacheLineSize};
use ringmesh_serve::{ServeExit, ServeOptions, Server};
use ringmesh_workload::{MemoryParams, MissProcess, WorkloadParams};

const HELP: &str = "\
ringmesh — flit-level hierarchical-ring / mesh interconnect simulator

USAGE:
    ringmesh [run] <NETWORK> [OPTIONS]
    ringmesh trace <NETWORK> [OPTIONS] [TRACE OPTIONS]
    ringmesh faults <NETWORK> [OPTIONS] [FAULT OPTIONS]
    ringmesh bench [BENCH OPTIONS]
    ringmesh serve [SERVE OPTIONS]
    ringmesh worker --connect <ADDR> [WORKER OPTIONS]

The `trace` subcommand runs the same simulation with the observability
subsystem recording: it prints per-counter and per-gauge batch
summaries and link-utilization heatmaps, and can export the sampled
flit-event stream as Chrome trace-event JSON (open in Perfetto or
chrome://tracing).

The `faults` subcommand runs the simulation under a deterministic,
seeded fault schedule (packet corruption, transient link-down
intervals, permanent router/IRI deaths) with an end-to-end retry layer
at the processors, and reports delivered throughput, drop accounting
and the packet-conservation audit. Same seeds replay bit-for-bit.

The `bench` subcommand records the performance baseline: kernel
throughput (simulated cycles per wall-clock second) for each network
model, and serial-vs-parallel sweep timings with a bit-exact output
comparison. It prints a summary and can write the machine-readable
baseline as JSON.

The `serve` subcommand turns the simulator into a sweep-job server: it
reads line-delimited JSON requests on stdin (or accepts concurrent TCP
connections with --listen), schedules jobs on the worker pool, streams
windowed progress and result events, and answers repeated jobs
instantly from a content-addressed result cache keyed by the
canonicalized configuration plus the code version. In-flight jobs
periodically checkpoint their full simulation state next to their
cache entry, and every accepted batch appends to an fsync'd journal
before simulating — so a server killed mid-batch (even SIGKILL)
finishes the work at its next startup, resuming from checkpoints, with
fingerprint-identical results. Cache entries carry integrity footers
verified on every read: torn or tampered entries are quarantined and
transparently recomputed. Connections and batches beyond the admission
limits are shed with typed busy events; request lines longer than 1
MiB draw a typed error event and are skipped. SIGTERM/SIGINT wind the
server down gracefully: checkpoints and journal flushed, exit code 6.

With --fleet the server also coordinates a distributed worker fleet:
remote `ringmesh worker` processes register over TCP (refused unless
their code-version hash matches exactly) and batch cache-misses are
dispatched to them under journaled, time-bounded leases. A worker that
dies or goes silent mid-lease has its jobs re-dispatched with capped
exponential backoff; long-tail stragglers are speculatively duplicated
with first-result-wins dedupe by content hash. Results merge in job
submission order, so a batch's output is byte-identical no matter how
many workers served it or died mid-flight. Byte-divergent duplicate
results for one content key are a hard determinism violation: the
batch fails and the server exits with code 7.

The `worker` subcommand is the other half: it connects to a serving
coordinator, registers with its code-version hash, heartbeats, and
runs dispatched jobs, streaming windowed progress and content-hashed
results back. Workers are stateless; kill -9 one mid-job and the
coordinator re-runs the job elsewhere with identical output.

Exit status: 0 success, 1 usage/config error, 2 simulation stall,
3 conservation violation, 4 I/O error, 5 protocol error,
6 interrupted by a graceful shutdown request, 7 determinism
violation (byte-divergent duplicate results in a worker fleet).

NETWORK (exactly one):
    --topology <SPEC>      any registered topology by its spec string:
                           ring:2:3:4 | ring2x:2:3:4 | slotted:2:3:4 |
                           mesh:12[:1flit|:4flit|:cl] | hybrid:4x4:4
                           (a 4x4 global mesh of 4-PM local rings)
    --ring <SPEC>          hierarchical ring, e.g. --ring 2:3:4
    --slotted-ring <SPEC>  slotted (non-blocking) hierarchical ring
    --mesh <SIDE>          square bi-directional mesh, e.g. --mesh 6

OPTIONS:
    --cache-line <SZ>      16B | 32B | 64B | 128B        [default: 64B]
    --buffers <B>          mesh buffers: 1flit|4flit|cl  [default: 4flit]
    --double-global        clock the ring's global ring at 2x
    --r <R>                locality region fraction (0,1] [default: 1.0]
    --c <C>                cache miss rate (0,1]          [default: 0.04]
    --t <T>                outstanding transaction limit  [default: 4]
    --geometric            geometric (memoryless) miss intervals
    --mem-latency <N>      memory access latency, cycles  [default: 10]
    --warmup <N>           warm-up cycles                 [default: 4000]
    --batch <N>            cycles per batch               [default: 4000]
    --batches <N>          measured batches               [default: 8]
    --seed <N>             RNG seed                       [default: 1380011591]
    --format <F>           text | csv                     [default: text]
    --kernel-threads <N>   intra-cycle compute threads for the network
                           kernel (accepted by every subcommand; results
                           are byte-identical at any count). Precedence:
                           this flag > RINGMESH_KERNEL_THREADS > 1.
                           Serial models (the rings) ignore it; under a
                           parallel sweep the count is clamped so
                           sweep x kernel threads never oversubscribes
                           the host                       [default: 1]
    -h, --help             print this help

TRACE OPTIONS (with the `trace` subcommand):
    --trace-out <PATH>     write Chrome trace-event JSON here
    --heatmap-csv <PATH>   write the link heatmap(s) as CSV here
    --window <N>           counter sampling window, cycles [default: 1000]
    --sample-every <N>     record events for 1 in N txns   [default: 16]

FAULT OPTIONS (with the `faults` subcommand):
    --corrupt <P>          per-packet corruption probability  [default: 0]
    --link-down <N>        transient link-down events         [default: 0]
    --link-down-cycles <N> cycles each link stays down        [default: 500]
    --kill-nodes <N>       routers/IRIs to fail-stop          [default: 0]
    --fault-seed <N>       fault-schedule seed                [default: 7]
    --timeout <N>          retry timeout, cycles              [default: 1000]
    --attempts <N>         max attempts (first issue incl.)   [default: 4]
    --backoff <N>          base retry backoff, cycles         [default: 64]
    --no-retry             disable the end-to-end retry layer
    --check                conservation tracking in release builds

BENCH OPTIONS (with the `bench` subcommand):
    --quick                quick scale (default unless RINGMESH_FULL set)
    --full                 publication scale
    --threads <N>          parallel-leg worker threads
                           [default: RINGMESH_THREADS or host cores]
    --out <PATH>           write the baseline as JSON here
    --check-against <PATH> compare kernel throughput against a committed
                           baseline JSON; exit 1 if any kernel's
                           single-thread cycles/s regressed by more
                           than the tolerance, or if parallel stepping
                           diverged across thread counts
    --tolerance <F>        allowed fractional regression for
                           --check-against            [default: 0.10]

SERVE OPTIONS (with the `serve` subcommand):
    --listen <ADDR>        accept TCP connections on ADDR (e.g.
                           127.0.0.1:7077) instead of stdin/stdout
    --cache <DIR>          result-cache directory  [default: .ringmesh-cache]
    --threads <N>          worker threads          [default: host cores]
    --verify-cache <F>     deterministically re-run this fraction of
                           cache hits and diff bit-for-bit [default: 0]
    --checkpoint-every <N> checkpoint in-flight jobs every N cycles,
                           0 disables                 [default: 100000]
    --window <N>           progress window, cycles    [default: 1000]
    --cache-budget <BYTES> evict least-recently-touched cache entries
                           (deterministically) past this many bytes,
                           at startup and after each batch
    --max-clients <N>      concurrent TCP sessions admitted; excess
                           connections get a busy event  [default: 16]
    --max-batches <N>      concurrent running batches; excess run
                           requests get a busy event     [default: 2]
    --read-deadline <S>    drop TCP sessions idle this many seconds,
                           0 disables                 [default: 300]
    --write-deadline <S>   per-event TCP write deadline in seconds,
                           0 disables                 [default: 30]
    --fleet <ADDR>         accept remote workers on ADDR (e.g.
                           127.0.0.1:7078) and dispatch batch jobs to
                           them under time-bounded leases
    --lease <MS>           fleet lease per dispatch   [default: 30000]
    --heartbeat <MS>       fleet heartbeat cadence    [default: 2000]
    --fleet-attempts <N>   dispatch attempts per job before falling
                           back to the local pool     [default: 4]

WORKER OPTIONS (with the `worker` subcommand):
    --connect <ADDR>       coordinator to register with (required)
    --threads <N>          concurrent dispatches to run [default: 1]

ENVIRONMENT:
    RINGMESH_FULL          any value but 0: figure sweeps and `bench`
                           default to publication scale (read once per
                           process)
    RINGMESH_THREADS       worker threads for parameter sweeps
                           [default: available host parallelism]
    RINGMESH_KERNEL_THREADS
                           intra-cycle compute threads for the network
                           kernel, overridden by --kernel-threads
                           [default: 1]
";

struct Args(Vec<String>);

impl Args {
    fn take_flag(&mut self, name: &str) -> bool {
        if let Some(i) = self.0.iter().position(|a| a == name) {
            self.0.remove(i);
            true
        } else {
            false
        }
    }

    fn take_value(&mut self, name: &str) -> Result<Option<String>, String> {
        if let Some(i) = self.0.iter().position(|a| a == name) {
            if i + 1 >= self.0.len() {
                return Err(format!("{name} requires a value"));
            }
            let v = self.0.remove(i + 1);
            self.0.remove(i);
            Ok(Some(v))
        } else {
            Ok(None)
        }
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.take_value(name)? {
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|e| format!("invalid value for {name}: {e}")),
            None => Ok(None),
        }
    }
}

fn build_config(args: &mut Args) -> Result<SystemConfig, String> {
    let topology: Option<NetworkSpec> = args.take_parsed("--topology")?;
    let ring: Option<String> = args.take_value("--ring")?;
    let slotted: Option<String> = args.take_value("--slotted-ring")?;
    let mesh: Option<u32> = args.take_parsed("--mesh")?;
    let buffers = match args.take_value("--buffers")?.as_deref() {
        None | Some("4flit") => BufferRegime::FourFlit,
        Some("1flit") => BufferRegime::OneFlit,
        Some("cl") => BufferRegime::CacheLine,
        Some(other) => return Err(format!("unknown buffer regime {other:?}")),
    };
    let double = args.take_flag("--double-global");
    let network = match (topology, ring, slotted, mesh) {
        // `--topology` carries the complete registry spec string;
        // mixing it with the shape-specific legacy flags is ambiguous.
        (Some(spec), None, None, None) => {
            if double {
                return Err(
                    "--double-global conflicts with --topology (use e.g. ring2x:2:3:4)".into(),
                );
            }
            spec
        }
        (None, Some(spec), None, None) => NetworkSpec::Ring {
            spec: spec.parse()?,
            speedup: if double { 2 } else { 1 },
        },
        (None, None, Some(spec), None) => NetworkSpec::SlottedRing {
            spec: spec.parse()?,
        },
        (None, None, None, Some(side)) => NetworkSpec::Mesh { side, buffers },
        _ => {
            return Err("specify exactly one of --topology, --ring, --slotted-ring, --mesh".into())
        }
    };
    let cache_line: CacheLineSize = args
        .take_value("--cache-line")?
        .as_deref()
        .unwrap_or("64B")
        .parse()?;
    let mut workload = WorkloadParams::paper_baseline();
    if let Some(r) = args.take_parsed::<f64>("--r")? {
        if !(r > 0.0 && r <= 1.0) {
            return Err(format!("--r must be in (0, 1], got {r}"));
        }
        workload = workload.with_region(r);
    }
    if let Some(c) = args.take_parsed::<f64>("--c")? {
        if !(c > 0.0 && c <= 1.0) {
            return Err(format!("--c must be in (0, 1], got {c}"));
        }
        workload.miss_rate = c;
    }
    if let Some(t) = args.take_parsed::<u32>("--t")? {
        if t == 0 {
            return Err("--t must be at least 1".into());
        }
        workload = workload.with_outstanding(t);
    }
    if args.take_flag("--geometric") {
        workload = workload.with_miss_process(MissProcess::Geometric);
    }
    let mut memory = MemoryParams::default();
    if let Some(l) = args.take_parsed::<u32>("--mem-latency")? {
        memory.latency = l;
    }
    let sim = SimParams {
        warmup: args.take_parsed("--warmup")?.unwrap_or(4_000),
        batch_cycles: args.take_parsed::<u64>("--batch")?.unwrap_or(4_000).max(1),
        batches: args.take_parsed::<usize>("--batches")?.unwrap_or(8).max(1),
    };
    let mut cfg = SystemConfig::new(network, cache_line)
        .with_workload(workload)
        .with_sim(sim);
    cfg.memory = memory;
    if let Some(seed) = args.take_parsed::<u64>("--seed")? {
        cfg = cfg.with_seed(seed);
    }
    Ok(cfg)
}

/// Options specific to the `trace` subcommand.
struct TraceOpts {
    out: Option<String>,
    heatmap_csv: Option<String>,
    cfg: TraceConfig,
}

fn parse_trace_opts(args: &mut Args) -> Result<TraceOpts, String> {
    let out = args.take_value("--trace-out")?;
    let heatmap_csv = args.take_value("--heatmap-csv")?;
    let window = args.take_parsed::<u64>("--window")?.unwrap_or(1_000).max(1);
    let sample_every = args
        .take_parsed::<u64>("--sample-every")?
        .unwrap_or(16)
        .max(1);
    Ok(TraceOpts {
        out,
        heatmap_csv,
        cfg: TraceConfig {
            window_cycles: window,
            sample_every,
            ..TraceConfig::default()
        },
    })
}

/// Options specific to the `faults` subcommand (the schedule horizon
/// comes from the simulation length, known only after `build_config`).
struct FaultOpts {
    corrupt: f64,
    link_down: u32,
    link_down_cycles: u64,
    kill_nodes: u32,
    seed: u64,
    retry: Option<RetryPolicy>,
    check: bool,
}

fn parse_fault_opts(args: &mut Args) -> Result<FaultOpts, String> {
    let corrupt = args.take_parsed::<f64>("--corrupt")?.unwrap_or(0.0);
    if !(0.0..=1.0).contains(&corrupt) {
        return Err(format!("--corrupt must be in [0, 1], got {corrupt}"));
    }
    let retry = if args.take_flag("--no-retry") {
        None
    } else {
        let default = RetryPolicy::default();
        Some(RetryPolicy {
            timeout: args
                .take_parsed::<u64>("--timeout")?
                .unwrap_or(default.timeout)
                .max(1),
            max_attempts: args
                .take_parsed::<u32>("--attempts")?
                .unwrap_or(default.max_attempts)
                .max(1),
            backoff: args
                .take_parsed::<u64>("--backoff")?
                .unwrap_or(default.backoff),
        })
    };
    Ok(FaultOpts {
        corrupt,
        link_down: args.take_parsed::<u32>("--link-down")?.unwrap_or(0),
        link_down_cycles: args
            .take_parsed::<u64>("--link-down-cycles")?
            .unwrap_or(500),
        kill_nodes: args.take_parsed::<u32>("--kill-nodes")?.unwrap_or(0),
        seed: args.take_parsed::<u64>("--fault-seed")?.unwrap_or(7),
        retry,
        check: args.take_flag("--check"),
    })
}

fn print_fault_report(report: &FaultRunReport, retry_enabled: bool) {
    let f = &report.faults;
    println!(
        "faults      : {} nodes killed, {} link-down events, {} packets corrupt-marked",
        f.nodes_killed, f.link_down_applied, f.corrupt_marked
    );
    println!(
        "drops       : {} total ({} corrupted, {} unreachable, {} dead-interface)",
        f.drops.total(),
        f.drops.corrupted,
        f.drops.unreachable,
        f.drops.dead_interface
    );
    if retry_enabled {
        let r = &report.retry;
        println!(
            "retry       : {} timeouts, {} retries, {} given up ({} dead-endpoint, {} stale responses)",
            r.timeouts, r.retries, r.gave_up, r.dead_drops, r.stale_responses
        );
    } else {
        println!("retry       : disabled");
    }
    match report.conservation {
        Some((injected, delivered, dropped)) => {
            let in_flight = injected - delivered - dropped;
            let verdict = if report.violation.is_none() {
                "ok"
            } else {
                "VIOLATED"
            };
            println!(
                "conservation: {injected} injected = {delivered} delivered + {dropped} dropped + {in_flight} in flight — {verdict}"
            );
        }
        None => println!("conservation: no ledger (network without fault support)"),
    }
}

fn run_faults(cfg: SystemConfig, opts: FaultOpts, format: &str) -> ExitCode {
    let label = cfg.network.label();
    let pms = cfg.network.num_pms();
    let plan = FaultPlan {
        faults: FaultConfig {
            seed: opts.seed,
            corrupt_prob: opts.corrupt,
            link_down_events: opts.link_down,
            link_down_cycles: opts.link_down_cycles,
            dead_nodes: opts.kill_nodes,
            horizon: cfg.sim.horizon(),
        },
        retry: opts.retry,
        check: opts.check,
    };
    let sys = match System::new(cfg) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let report = match sys.run_faulty(&plan) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    print_result(format, &label, pms, &report.result);
    print_fault_report(&report, plan.retry.is_some());
    if let Some(v) = &report.violation {
        eprintln!("error: packet conservation violated: {v}");
        return ExitStatus::ConservationViolation.into();
    }
    ExitStatus::Success.into()
}

/// Prints `e` and maps it to the typed exit status, so scripts can tell
/// "the simulation deadlocked" from "bad arguments".
fn fail(e: &RunError) -> ExitCode {
    eprintln!("error: {e}");
    ExitStatus::from(e).into()
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitStatus::Usage.into()
}

fn print_result(format: &str, label: &str, pms: u32, r: &ringmesh::RunResult) {
    match format {
        "csv" => {
            println!("network,pms,latency,ci95,throughput,utilization");
            println!(
                "{label},{pms},{:.3},{:.3},{:.5},{:.4}",
                r.latency.mean, r.latency.ci95, r.throughput, r.utilization.overall
            );
        }
        _ => {
            println!("network     : {label} ({pms} PMs)");
            println!(
                "latency     : {:.1} ± {:.1} cycles (95% CI over {} batches)",
                r.latency.mean, r.latency.ci95, r.latency.n
            );
            if let Some((p50, p95, p99)) = r.percentiles {
                println!("percentiles : p50 {p50:.0}, p95 {p95:.0}, p99 {p99:.0} cycles");
            }
            println!("throughput  : {:.4} transactions/cycle", r.throughput);
            println!("utilization : {:.1}%", 100.0 * r.utilization.overall);
            for level in &r.utilization.levels {
                println!("  {:18}: {:.1}%", level.label, 100.0 * level.utilization);
            }
            println!(
                "workload    : {} issued, {} retired ({} local)",
                r.workload.issued, r.workload.retired, r.workload.local_retired
            );
        }
    }
}

fn run_trace(cfg: SystemConfig, opts: TraceOpts, format: &str) -> ExitCode {
    let label = cfg.network.label();
    let pms = cfg.network.num_pms();
    let sys = match System::new(cfg) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let (r, report) = match sys.run_traced(opts.cfg) {
        Ok(x) => x,
        Err(e) => return fail(&e),
    };
    print_result(format, &label, pms, &r);
    println!();
    print!("{}", report.to_text());
    if let Some(path) = opts.heatmap_csv {
        let mut csv = String::new();
        for map in &report.heatmaps {
            csv.push_str(&map.to_csv());
            csv.push('\n');
        }
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("error: writing {path}: {e}");
            return ExitStatus::Io.into();
        }
        eprintln!("heatmap CSV written to {path}");
    }
    if let Some(path) = opts.out {
        if let Err(e) = std::fs::write(&path, report.chrome_trace_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitStatus::Io.into();
        }
        eprintln!(
            "Chrome trace written to {path} ({} events, {} dropped)",
            report.events.len(),
            report.events_dropped
        );
    }
    ExitStatus::Success.into()
}

fn run_bench(mut args: Args) -> ExitCode {
    let full = args.take_flag("--full");
    let quick = args.take_flag("--quick");
    let threads = match args.take_parsed::<usize>("--threads") {
        Ok(t) => t,
        Err(e) => return usage_error(&e),
    };
    let out = match args.take_value("--out") {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let check_against = match args.take_value("--check-against") {
        Ok(c) => c,
        Err(e) => return usage_error(&e),
    };
    let tolerance = match args.take_parsed::<f64>("--tolerance") {
        Ok(t) => t.unwrap_or(0.10),
        Err(e) => return usage_error(&e),
    };
    if !(0.0..1.0).contains(&tolerance) {
        return usage_error(&format!("--tolerance must be in [0, 1), got {tolerance}"));
    }
    if !args.0.is_empty() {
        return usage_error(&format!("unrecognized arguments: {:?}", args.0));
    }
    let defaults = BenchOptions::default();
    let opts = BenchOptions {
        scale: match (full, quick) {
            (true, false) => ringmesh::Scale::full(),
            (false, true) => ringmesh::Scale::quick(),
            _ => defaults.scale,
        },
        threads: threads.unwrap_or(defaults.threads),
    };
    let report = benchrun::run(&opts);
    print!("{}", report.to_text());
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("error: writing {path}: {e}");
            return ExitStatus::Io.into();
        }
        eprintln!("benchmark baseline written to {path}");
    }
    if let Some(path) = check_against {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: reading baseline {path}: {e}");
                return ExitStatus::Io.into();
            }
        };
        match benchrun::check_against(&report, &baseline, tolerance) {
            Ok(summary) => {
                eprintln!(
                    "bench regression gate vs {path} (tolerance {:.0}%): pass",
                    tolerance * 100.0
                );
                eprint!("{summary}");
            }
            Err(failures) => {
                eprintln!(
                    "error: bench regression gate vs {path} (tolerance {:.0}%) FAILED",
                    tolerance * 100.0
                );
                eprint!("{failures}");
                return ExitStatus::Usage.into();
            }
        }
    }
    ExitStatus::Success.into()
}

/// Set from the signal handler; a bridge thread relays it onto the
/// server's stop flag (handlers must stay async-signal-safe, so the
/// handler itself only flips this atomic).
static STOP_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_stop_signal(_sig: i32) {
    STOP_REQUESTED.store(true, Ordering::SeqCst);
}

/// Routes SIGTERM and SIGINT into [`STOP_REQUESTED`]. Note libc's
/// `signal` implies SA_RESTART, so a stdin session blocked in a read
/// only notices at its next request boundary or EOF; TCP sessions poll
/// the flag every second.
#[cfg(unix)]
fn install_stop_signals() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_stop_signal);
        signal(SIGINT, on_stop_signal);
    }
}

#[cfg(not(unix))]
fn install_stop_signals() {}

/// A `--fleet` coordinator endpoint plus its tuning knobs.
type FleetSpec = (String, FleetOptions);

fn run_serve(mut args: Args) -> ExitCode {
    let parsed = (|| -> Result<(Option<String>, Option<FleetSpec>, ServeOptions), String> {
        let listen = args.take_value("--listen")?;
        let fleet = args.take_value("--fleet")?;
        let fleet_defaults = FleetOptions::default();
        let fleet = fleet.map(|addr| -> Result<FleetSpec, String> {
            Ok((
                addr,
                FleetOptions {
                    lease_ms: args
                        .take_parsed::<u64>("--lease")?
                        .unwrap_or(fleet_defaults.lease_ms)
                        .max(1),
                    heartbeat_ms: args
                        .take_parsed::<u64>("--heartbeat")?
                        .unwrap_or(fleet_defaults.heartbeat_ms)
                        .max(10),
                    max_attempts: args
                        .take_parsed::<u32>("--fleet-attempts")?
                        .unwrap_or(fleet_defaults.max_attempts)
                        .max(1),
                    ..fleet_defaults
                },
            ))
        });
        let mut fleet = fleet.transpose()?;
        let cache_dir = args
            .take_value("--cache")?
            .unwrap_or_else(|| ".ringmesh-cache".into());
        let threads = args.take_parsed::<usize>("--threads")?;
        let verify = args.take_parsed::<f64>("--verify-cache")?.unwrap_or(0.0);
        if !(0.0..=1.0).contains(&verify) {
            return Err(format!("--verify-cache must be in [0, 1], got {verify}"));
        }
        let checkpoint_every = args
            .take_parsed::<u64>("--checkpoint-every")?
            .unwrap_or(100_000);
        let window = args
            .take_parsed::<u64>("--window")?
            .unwrap_or(TraceConfig::default().window_cycles)
            .max(1);
        let defaults = ServeOptions::default();
        let cache_budget = args.take_parsed::<u64>("--cache-budget")?;
        let max_clients = args
            .take_parsed::<usize>("--max-clients")?
            .unwrap_or(defaults.max_clients)
            .max(1);
        let max_batches = args
            .take_parsed::<usize>("--max-batches")?
            .unwrap_or(defaults.max_batches)
            .max(1);
        // 0 = no deadline, for debugging against a paused client.
        let secs = |v: Option<u64>, default: Option<Duration>| match v {
            Some(0) => None,
            Some(s) => Some(Duration::from_secs(s)),
            None => default,
        };
        let read_deadline = secs(
            args.take_parsed::<u64>("--read-deadline")?,
            defaults.read_deadline,
        );
        let write_deadline = secs(
            args.take_parsed::<u64>("--write-deadline")?,
            defaults.write_deadline,
        );
        if !args.0.is_empty() {
            return Err(format!("unrecognized arguments: {:?}", args.0));
        }
        // Fleet progress windows track the serve-side window length so
        // remote and local jobs stream comparable events.
        if let Some((_, fleet_opts)) = fleet.as_mut() {
            fleet_opts.window_cycles = window;
        }
        Ok((
            listen,
            fleet,
            ServeOptions {
                cache_dir: PathBuf::from(cache_dir),
                threads,
                verify_fraction: verify,
                checkpoint_every,
                window_cycles: window,
                cache_budget,
                max_clients,
                max_batches,
                read_deadline,
                write_deadline,
            },
        ))
    })();
    let (listen, fleet, opts) = match parsed {
        Ok(x) => x,
        Err(e) => return usage_error(&e),
    };
    let server = match Server::new(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: opening result cache: {e}");
            return ExitStatus::Io.into();
        }
    };
    if let Some((addr, fleet_opts)) = fleet {
        match FleetPool::bind(&addr, fleet_opts) {
            Ok(pool) => server.set_remote(std::sync::Arc::new(pool)),
            Err(e) => {
                eprintln!("error: binding fleet listener {addr}: {e}");
                return ExitStatus::Io.into();
            }
        }
    }

    install_stop_signals();
    let stop = server.stop_handle();
    std::thread::spawn(move || loop {
        if STOP_REQUESTED.load(Ordering::SeqCst) {
            stop.set();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    let outcome = match listen {
        Some(addr) => server.serve_tcp(&addr).map(|()| ServeExit::Shutdown),
        None => server.serve(io::stdin().lock(), io::stdout().lock()),
    };
    match outcome {
        Ok(exit) => {
            let (hits, misses) = server.cache_counters();
            eprintln!("ringmesh serve: {hits} cache hits, {misses} misses this session");
            if server.determinism_violations() > 0 {
                // Outranks every other outcome: the fleet produced
                // byte-divergent results for one content key, so nothing
                // this session reported should be trusted.
                ExitStatus::DeterminismViolation.into()
            } else if exit == ServeExit::Terminated || STOP_REQUESTED.load(Ordering::SeqCst) {
                ExitStatus::Interrupted.into()
            } else if server.protocol_errors() > 0 {
                // Every malformed line was answered and skipped; the
                // exit code still reports that the stream wasn't clean.
                ExitStatus::Protocol.into()
            } else {
                ExitStatus::Success.into()
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitStatus::Io.into()
        }
    }
}

/// `ringmesh worker --connect <host:port>`: join a serving
/// coordinator's fleet and run dispatched jobs until told goodbye.
fn run_worker_cmd(mut args: Args) -> ExitCode {
    let parsed = (|| -> Result<(String, WorkerOptions), String> {
        let connect = args
            .take_value("--connect")?
            .ok_or_else(|| "worker requires --connect <host:port>".to_string())?;
        let threads = args.take_parsed::<u32>("--threads")?.unwrap_or(1).max(1);
        if !args.0.is_empty() {
            return Err(format!("unrecognized arguments: {:?}", args.0));
        }
        Ok((connect, WorkerOptions { threads }))
    })();
    let (connect, opts) = match parsed {
        Ok(x) => x,
        Err(e) => return usage_error(&e),
    };

    install_stop_signals();
    let stop = ringmesh::StopFlag::new();
    let bridge = stop.clone();
    std::thread::spawn(move || loop {
        if STOP_REQUESTED.load(Ordering::SeqCst) {
            bridge.set();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    match run_worker(&connect, &opts, &stop) {
        Ok(WorkerExit::Done) => ExitStatus::Success.into(),
        // A refused registration is an operator problem (stale binary
        // pointed at a newer coordinator), not a transport failure.
        Ok(WorkerExit::Refused { .. }) => ExitStatus::Usage.into(),
        Ok(WorkerExit::Stopped) => ExitStatus::Interrupted.into(),
        Err(e) => {
            eprintln!("error: {e}");
            ExitStatus::Io.into()
        }
    }
}

fn main() -> ExitCode {
    let mut args = Args(std::env::args().skip(1).collect());
    if args.take_flag("--help") || args.take_flag("-h") || args.0.is_empty() {
        print!("{HELP}");
        return ExitStatus::Success.into();
    }
    // Global knob, honoured by every subcommand: flag beats the
    // RINGMESH_KERNEL_THREADS environment variable beats serial.
    match args.take_parsed::<usize>("--kernel-threads") {
        Ok(Some(n)) => ringmesh::set_kernel_threads(n.max(1)),
        Ok(None) => {}
        Err(e) => return usage_error(&e),
    }
    if args.0.first().is_some_and(|a| a == "bench") {
        args.0.remove(0);
        return run_bench(args);
    }
    if args.0.first().is_some_and(|a| a == "serve") {
        args.0.remove(0);
        return run_serve(args);
    }
    if args.0.first().is_some_and(|a| a == "worker") {
        args.0.remove(0);
        return run_worker_cmd(args);
    }
    // `run` is the default subcommand; the explicit token is accepted
    // so scripts can spell every invocation uniformly.
    let tracing = args.0.first().is_some_and(|a| a == "trace");
    let faulting = args.0.first().is_some_and(|a| a == "faults");
    if tracing || faulting || args.0.first().is_some_and(|a| a == "run") {
        args.0.remove(0);
    }
    let format = match args.take_value("--format") {
        Ok(f) => f.unwrap_or_else(|| "text".into()),
        Err(e) => return usage_error(&e),
    };
    let trace_opts = if tracing {
        match parse_trace_opts(&mut args) {
            Ok(o) => Some(o),
            Err(e) => return usage_error(&e),
        }
    } else {
        None
    };
    let fault_opts = if faulting {
        match parse_fault_opts(&mut args) {
            Ok(o) => Some(o),
            Err(e) => return usage_error(&e),
        }
    } else {
        None
    };
    let cfg = match build_config(&mut args) {
        Ok(cfg) => cfg,
        Err(e) => return usage_error(&e),
    };
    if !args.0.is_empty() {
        return usage_error(&format!("unrecognized arguments: {:?}", args.0));
    }
    if let Some(opts) = trace_opts {
        return run_trace(cfg, opts, &format);
    }
    if let Some(opts) = fault_opts {
        return run_faults(cfg, opts, &format);
    }
    let label = cfg.network.label();
    let pms = cfg.network.num_pms();
    match run_config(cfg) {
        Ok(r) => {
            print_result(&format, &label, pms, &r);
            ExitStatus::Success.into()
        }
        Err(e) => fail(&e),
    }
}
